//! FastTree-style gradient-boosted regression trees (MART).
//!
//! The combined meta-model in the paper is "FastTree regression", ML.NET's
//! implementation of the MART gradient-boosting algorithm (Section 4.3): a series of
//! shallow regression trees, each fitted to the residuals of the trees before it, with
//! per-tree subsampling of the training data (rate 0.9) that makes the ensemble
//! resilient to noise in past execution times.  The paper finds 20 trees of depth 5
//! with the mean-squared-log-error objective sufficient.
//!
//! Fitting squared error on `log1p(target)` makes each boosting stage's negative
//! gradient a plain residual in log space, so the classic "fit a tree to the
//! residuals" recipe directly optimises the paper's MSLE loss.

use crate::dataset::Dataset;
use crate::decision_tree::DecisionTreeRegressor;
use crate::loss::TargetTransform;
use crate::model::Regressor;
use cleo_common::rng::DetRng;
use cleo_common::{CleoError, Result};

/// Configuration for [`FastTreeRegressor`].
#[derive(Debug, Clone, PartialEq)]
pub struct FastTreeConfig {
    /// Number of boosting stages (the paper uses 20).
    pub n_trees: usize,
    /// Depth of each tree (the paper uses 5).
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Shrinkage applied to each stage's contribution.
    pub learning_rate: f64,
    /// Fraction of the training rows sampled (without replacement) for each stage
    /// (the paper uses 0.9).
    pub subsample: f64,
    /// Seed for subsampling.
    pub seed: u64,
    /// Target transform (log space reproduces the paper's MSLE objective).
    pub target_transform: TargetTransform,
}

impl Default for FastTreeConfig {
    fn default() -> Self {
        FastTreeConfig {
            n_trees: 20,
            max_depth: 5,
            min_samples_leaf: 1,
            learning_rate: 0.3,
            subsample: 0.9,
            seed: 0,
            target_transform: TargetTransform::Log1p,
        }
    }
}

/// Maximum ensemble size the flat batched walk supports (a sanity bound; the
/// paper's ensembles use 20–50 trees).
const MAX_FLAT_TREES: usize = 4096;

/// The compiled ensemble, specialised by complete-tree width so the inner walk
/// indexes fixed-size rows (`slot & (W-1)` is provably in bounds — the
/// hot loop carries no bounds checks).
#[derive(Debug, Clone)]
enum FlatEnsemble {
    /// Depth ≤ 3 (the combined meta-model's shape).
    W8(FlatTables<8>),
    /// Depth ≤ 5 (the paper's per-family ensembles).
    W32(FlatTables<32>),
}

/// Split and leaf tables at a fixed complete-tree width `W = 1 << depth`:
/// one `[(feature, threshold); W]` row and one `[leaf; W]` row per tree.
/// Shallow stages are padded (sentinel always-left splits, leaf values
/// replicated across their subtree's bottom slots), so every stage walks
/// exactly `depth` levels and takes the branches the node walk would take.
#[derive(Debug, Clone)]
struct FlatTables<const W: usize> {
    splits: Vec<[(u32, f64); W]>,
    leaves: Vec<[f64; W]>,
}

impl<const W: usize> FlatTables<W> {
    fn build(parts: &[crate::decision_tree::FlatParts<'_>]) -> FlatTables<W> {
        let depth = W.trailing_zeros() as usize;
        let mut tables = FlatTables {
            splits: Vec::with_capacity(parts.len()),
            leaves: Vec::with_capacity(parts.len()),
        };
        for &(d, splits, leaves) in parts {
            debug_assert!(d <= depth);
            let mut srow = [(0u32, f64::INFINITY); W];
            for (p, slot) in srow.iter_mut().enumerate().take(1 << d).skip(1) {
                *slot = splits[p];
            }
            let mut lrow = [0.0f64; W];
            for (j, slot) in lrow.iter_mut().enumerate() {
                *slot = leaves[j >> (depth - d)];
            }
            tables.splits.push(srow);
            tables.leaves.push(lrow);
        }
        tables
    }

    /// Add `lr * tree(row_k)` onto each accumulator in tree order (the exact
    /// accumulation sequence of the scalar path).  Two trees × four rows run at
    /// once with all eight descent cursors held in registers: each cursor's
    /// chain of dependent loads is short (`depth` steps), the eight chains are
    /// independent and overlap, and `slot & (W-1)` indexing into the fixed-size
    /// rows carries no bounds checks.
    // `!(x <= t)` is deliberate: it goes right exactly when the node walk's
    // `x <= t` (go left) is false, including for NaN rows.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    #[inline]
    fn accumulate4(&self, lr: f64, rows: [&[f64]; 4], acc: &mut [f64; 4]) {
        let depth = W.trailing_zeros();
        let n = self.splits.len();
        let [r0, r1, r2, r3] = rows;
        let mut t = 0usize;
        while t + 2 <= n {
            let sa = &self.splits[t];
            let sb = &self.splits[t + 1];
            let (mut a0, mut a1, mut a2, mut a3) = (1usize, 1usize, 1usize, 1usize);
            let (mut b0, mut b1, mut b2, mut b3) = (1usize, 1usize, 1usize, 1usize);
            for _ in 0..depth {
                let (fa0, ta0) = sa[a0 & (W - 1)];
                let (fa1, ta1) = sa[a1 & (W - 1)];
                let (fa2, ta2) = sa[a2 & (W - 1)];
                let (fa3, ta3) = sa[a3 & (W - 1)];
                let (fb0, tb0) = sb[b0 & (W - 1)];
                let (fb1, tb1) = sb[b1 & (W - 1)];
                let (fb2, tb2) = sb[b2 & (W - 1)];
                let (fb3, tb3) = sb[b3 & (W - 1)];
                a0 = 2 * a0 + usize::from(!(r0[fa0 as usize] <= ta0));
                a1 = 2 * a1 + usize::from(!(r1[fa1 as usize] <= ta1));
                a2 = 2 * a2 + usize::from(!(r2[fa2 as usize] <= ta2));
                a3 = 2 * a3 + usize::from(!(r3[fa3 as usize] <= ta3));
                b0 = 2 * b0 + usize::from(!(r0[fb0 as usize] <= tb0));
                b1 = 2 * b1 + usize::from(!(r1[fb1 as usize] <= tb1));
                b2 = 2 * b2 + usize::from(!(r2[fb2 as usize] <= tb2));
                b3 = 2 * b3 + usize::from(!(r3[fb3 as usize] <= tb3));
            }
            // Final heap slots are in [W, 2W); masking by W-1 yields the leaf
            // index.  Per row, tree t is added before tree t+1 — the scalar
            // path's order.
            let la = &self.leaves[t];
            let lb = &self.leaves[t + 1];
            acc[0] += lr * la[a0 & (W - 1)];
            acc[1] += lr * la[a1 & (W - 1)];
            acc[2] += lr * la[a2 & (W - 1)];
            acc[3] += lr * la[a3 & (W - 1)];
            acc[0] += lr * lb[b0 & (W - 1)];
            acc[1] += lr * lb[b1 & (W - 1)];
            acc[2] += lr * lb[b2 & (W - 1)];
            acc[3] += lr * lb[b3 & (W - 1)];
            t += 2;
        }
        if t < n {
            let s = &self.splits[t];
            let (mut a0, mut a1, mut a2, mut a3) = (1usize, 1usize, 1usize, 1usize);
            for _ in 0..depth {
                let (f0, t0) = s[a0 & (W - 1)];
                let (f1, t1) = s[a1 & (W - 1)];
                let (f2, t2) = s[a2 & (W - 1)];
                let (f3, t3) = s[a3 & (W - 1)];
                a0 = 2 * a0 + usize::from(!(r0[f0 as usize] <= t0));
                a1 = 2 * a1 + usize::from(!(r1[f1 as usize] <= t1));
                a2 = 2 * a2 + usize::from(!(r2[f2 as usize] <= t2));
                a3 = 2 * a3 + usize::from(!(r3[f3 as usize] <= t3));
            }
            let l = &self.leaves[t];
            acc[0] += lr * l[a0 & (W - 1)];
            acc[1] += lr * l[a1 & (W - 1)];
            acc[2] += lr * l[a2 & (W - 1)];
            acc[3] += lr * l[a3 & (W - 1)];
        }
    }
}

impl FlatTables<8> {
    /// Depth-3 oblivious evaluation: all seven split comparisons of a tree are
    /// computed unconditionally from *fixed* slots (no data-dependent load
    /// chain), and arithmetic selection picks exactly the leaf the sequential
    /// descent would reach — the padding sentinels make the extra comparisons
    /// harmless and each comparison uses the descent's own `<=` predicate, so
    /// the chosen leaf (and the prediction) is bit-identical.  The seven split
    /// records are loaded once per tree and shared by all four rows.
    #[inline]
    fn accumulate4_oblivious(&self, lr: f64, rows: [&[f64]; 4], acc: &mut [f64; 4]) {
        // `!(x <= t)` is deliberate: NaN parity with the sequential descent.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        #[inline(always)]
        fn leaf_of(srow: &[(u32, f64); 8], row: &[f64]) -> usize {
            let c1 = usize::from(!(row[srow[1].0 as usize] <= srow[1].1));
            let c2 = usize::from(!(row[srow[2].0 as usize] <= srow[2].1));
            let c3 = usize::from(!(row[srow[3].0 as usize] <= srow[3].1));
            let c4 = usize::from(!(row[srow[4].0 as usize] <= srow[4].1));
            let c5 = usize::from(!(row[srow[5].0 as usize] <= srow[5].1));
            let c6 = usize::from(!(row[srow[6].0 as usize] <= srow[6].1));
            let c7 = usize::from(!(row[srow[7].0 as usize] <= srow[7].1));
            let n2 = 2 + c1; // node visited at level 1 (2 or 3)
            let b2 = [c2, c3][c1];
            let n3 = 2 * n2 + b2; // node visited at level 2 (4..=7)
            let b3 = [c4, c5, c6, c7][n3 - 4];
            2 * n3 + b3 - 8 // leaf slot (0..=7)
        }
        let [r0, r1, r2, r3] = rows;
        for (srow, lrow) in self.splits.iter().zip(&self.leaves) {
            let l0 = leaf_of(srow, r0);
            let l1 = leaf_of(srow, r1);
            let l2 = leaf_of(srow, r2);
            let l3 = leaf_of(srow, r3);
            acc[0] += lr * lrow[l0];
            acc[1] += lr * lrow[l1];
            acc[2] += lr * lrow[l2];
            acc[3] += lr * lrow[l3];
        }
    }
}

impl FlatEnsemble {
    fn build(trees: &[DecisionTreeRegressor]) -> Option<FlatEnsemble> {
        if trees.is_empty() || trees.len() > MAX_FLAT_TREES {
            return None;
        }
        let parts: Option<Vec<_>> = trees.iter().map(|t| t.flat_parts()).collect();
        let parts = parts?;
        let depth = parts.iter().map(|(d, _, _)| *d).max().unwrap_or(0);
        match depth {
            0..=3 => Some(FlatEnsemble::W8(FlatTables::build(&parts))),
            4..=5 => Some(FlatEnsemble::W32(FlatTables::build(&parts))),
            _ => None,
        }
    }

    #[inline]
    fn accumulate4(&self, lr: f64, rows: [&[f64]; 4], acc: &mut [f64; 4]) {
        match self {
            FlatEnsemble::W8(t) => t.accumulate4_oblivious(lr, rows, acc),
            FlatEnsemble::W32(t) => t.accumulate4(lr, rows, acc),
        }
    }
}

/// MART-style gradient-boosted tree ensemble.
#[derive(Debug, Clone)]
pub struct FastTreeRegressor {
    config: FastTreeConfig,
    base_prediction: f64,
    trees: Vec<DecisionTreeRegressor>,
    /// Contiguous compiled form of `trees` (see [`FlatEnsemble`]); `None` when
    /// any stage is too deep for the complete layout.
    flat: Option<FlatEnsemble>,
    fitted: bool,
}

impl FastTreeRegressor {
    /// Create an ensemble with an explicit configuration.
    pub fn new(config: FastTreeConfig) -> Self {
        FastTreeRegressor {
            config,
            base_prediction: 0.0,
            trees: Vec::new(),
            flat: None,
            fitted: false,
        }
    }

    /// The paper's configuration (20 trees, depth 5, subsample 0.9, MSLE).
    pub fn paper_default(seed: u64) -> Self {
        FastTreeRegressor::new(FastTreeConfig {
            seed,
            ..FastTreeConfig::default()
        })
    }

    /// Number of fitted boosting stages.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// The ensemble's configuration.
    pub fn config(&self) -> &FastTreeConfig {
        &self.config
    }

    /// The fitted base prediction (mean transformed target).
    pub fn base_prediction(&self) -> f64 {
        self.base_prediction
    }

    /// The fitted boosting stages, in stage order.
    pub fn trees(&self) -> &[DecisionTreeRegressor] {
        &self.trees
    }

    /// Rebuild an ensemble from persisted parts.  The compiled flat form is
    /// derived from the stage trees exactly as [`Regressor::fit`] derives it,
    /// so the restored ensemble predicts bit-identically to the exported one
    /// (same config, same base prediction, same stage trees, same descent).
    pub fn from_parts(
        config: FastTreeConfig,
        base_prediction: f64,
        trees: Vec<DecisionTreeRegressor>,
        fitted: bool,
    ) -> FastTreeRegressor {
        let flat = FlatEnsemble::build(&trees);
        FastTreeRegressor {
            config,
            base_prediction,
            trees,
            flat,
            fitted,
        }
    }

    /// Prediction in model (log) space, before the inverse target transform.
    fn predict_transformed(&self, row: &[f64]) -> f64 {
        let mut pred = self.base_prediction;
        for tree in &self.trees {
            pred += self.config.learning_rate * tree.predict_raw(row);
        }
        pred
    }
}

impl Regressor for FastTreeRegressor {
    fn fit(&mut self, data: &Dataset) -> Result<()> {
        if data.is_empty() {
            return Err(CleoError::InvalidTrainingData(
                "gradient boosting requires at least one sample".into(),
            ));
        }
        if !(0.0 < self.config.subsample && self.config.subsample <= 1.0) {
            return Err(CleoError::Config(format!(
                "subsample must be in (0, 1], got {}",
                self.config.subsample
            )));
        }
        let n = data.n_rows();
        let y = self.config.target_transform.forward_all(data.targets());
        let mut rng = DetRng::new(self.config.seed);

        self.base_prediction = y.iter().sum::<f64>() / n as f64;
        let mut current: Vec<f64> = vec![self.base_prediction; n];
        self.trees.clear();

        let sample_size = ((n as f64) * self.config.subsample).round().max(1.0) as usize;
        for t in 0..self.config.n_trees {
            let residuals: Vec<f64> = y.iter().zip(current.iter()).map(|(t, p)| t - p).collect();
            // Subsample rows without replacement for this stage.
            let rows: Vec<usize> = if sample_size < n {
                rng.sample_indices(n, sample_size)
            } else {
                (0..n).collect()
            };
            let sample = data.select_rows(&rows);
            let sample_residuals: Vec<f64> = rows.iter().map(|&i| residuals[i]).collect();

            let mut tree = DecisionTreeRegressor::ensemble_base(
                self.config.max_depth,
                self.config.min_samples_leaf,
                self.config.seed.wrapping_add(1 + t as u64 * 6151),
            );
            tree.fit_raw(&sample, &sample_residuals)?;

            // Update the running prediction on the full training set.
            for (i, c) in current.iter_mut().enumerate() {
                *c += self.config.learning_rate * tree.predict_raw(data.row(i));
            }
            self.trees.push(tree);
        }
        self.flat = FlatEnsemble::build(&self.trees);
        self.fitted = true;
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        if !self.fitted {
            return 0.0;
        }
        self.config
            .target_transform
            .inverse(self.predict_transformed(row))
    }

    fn predict_batch_into(&self, rows: &crate::matrix::FeatureMatrix, out: &mut Vec<f64>) {
        if !self.fitted {
            out.extend(rows.rows().map(|_| 0.0));
            return;
        }
        // Tree-outer traversal with four rows in flight: each tree's table
        // stays hot in cache while the four independent descent chains overlap.
        // Per row the additions still happen in tree order starting from the
        // base prediction — the exact accumulation sequence of `predict_row` —
        // so the results are bit-identical.
        let start = out.len();
        let n = rows.n_rows();
        out.resize(start + n, self.base_prediction);
        let lr = self.config.learning_rate;
        let acc = &mut out[start..];
        let mut i = 0usize;
        // Depth-3 ensembles take 8 rows per step through the lane-blocked
        // oblivious kernel (runtime-dispatched SIMD, see `crate::simd`): the
        // row block is transposed once per 8 rows and every tree evaluates all
        // seven splits across the block at once.
        if let Some(FlatEnsemble::W8(tables)) = &self.flat {
            if n >= crate::simd::LANES {
                crate::simd::with_lane_block(|block| {
                    while i + crate::simd::LANES <= n {
                        crate::simd::transpose_block(
                            rows.rows_flat(i, crate::simd::LANES),
                            rows.n_cols(),
                            block,
                        );
                        let mut lanes = [0.0f64; crate::simd::LANES];
                        lanes.copy_from_slice(&acc[i..i + crate::simd::LANES]);
                        crate::simd::tree8_depth3_accumulate(
                            &tables.splits,
                            &tables.leaves,
                            lr,
                            block,
                            &mut lanes,
                        );
                        acc[i..i + crate::simd::LANES].copy_from_slice(&lanes);
                        i += crate::simd::LANES;
                    }
                });
            }
        }
        while i + 4 <= n {
            let (r0, r1, r2, r3) = (
                rows.row(i),
                rows.row(i + 1),
                rows.row(i + 2),
                rows.row(i + 3),
            );
            if let Some(flat) = &self.flat {
                let mut quad = [acc[i], acc[i + 1], acc[i + 2], acc[i + 3]];
                flat.accumulate4(lr, [r0, r1, r2, r3], &mut quad);
                acc[i..i + 4].copy_from_slice(&quad);
            } else {
                for tree in &self.trees {
                    let v = tree.predict_raw4(r0, r1, r2, r3);
                    acc[i] += lr * v[0];
                    acc[i + 1] += lr * v[1];
                    acc[i + 2] += lr * v[2];
                    acc[i + 3] += lr * v[3];
                }
            }
            i += 4;
        }
        for (a, k) in acc[i..].iter_mut().zip(i..n) {
            for tree in &self.trees {
                *a += lr * tree.predict_raw(rows.row(k));
            }
        }
        for a in acc {
            *a = self.config.target_transform.inverse(*a);
        }
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }

    fn name(&self) -> &'static str {
        "FastTree Regression"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::Loss;
    use cleo_common::rng::DetRng;
    use cleo_common::stats;

    fn piecewise_dataset(seed: u64, n: usize) -> Dataset {
        let mut rng = DetRng::new(seed);
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        for _ in 0..n {
            let a = rng.uniform(0.0, 100.0);
            let b = rng.uniform(0.0, 10.0);
            let c = rng.uniform(0.0, 1.0);
            let y = (if a > 60.0 { 3.0 * a } else { 0.5 * a } + 10.0 * b)
                * rng.lognormal_noise(0.05)
                + c;
            rows.push(vec![a, b, c]);
            targets.push(y);
        }
        Dataset::from_rows(vec!["a".into(), "b".into(), "c".into()], rows, targets).unwrap()
    }

    #[test]
    fn boosting_reduces_training_loss_monotonically_enough() {
        let ds = piecewise_dataset(1, 300);
        let mut few = FastTreeRegressor::new(FastTreeConfig {
            n_trees: 2,
            seed: 3,
            ..FastTreeConfig::default()
        });
        let mut many = FastTreeRegressor::paper_default(3);
        few.fit(&ds).unwrap();
        many.fit(&ds).unwrap();
        let loss_few = Loss::MeanSquaredLogError.evaluate(&few.predict(&ds), ds.targets());
        let loss_many = Loss::MeanSquaredLogError.evaluate(&many.predict(&ds), ds.targets());
        assert!(
            loss_many < loss_few,
            "20 trees ({loss_many}) should beat 2 trees ({loss_few})"
        );
    }

    #[test]
    fn fits_heterogeneous_data_with_high_correlation() {
        let ds = piecewise_dataset(2, 500);
        let mut gbt = FastTreeRegressor::paper_default(11);
        gbt.fit(&ds).unwrap();
        assert_eq!(gbt.n_trees(), 20);
        let preds = gbt.predict(&ds);
        let corr = stats::pearson(&preds, ds.targets());
        assert!(corr > 0.93, "corr = {corr}");
        assert!(preds.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = piecewise_dataset(3, 120);
        let mut a = FastTreeRegressor::paper_default(9);
        let mut b = FastTreeRegressor::paper_default(9);
        a.fit(&ds).unwrap();
        b.fit(&ds).unwrap();
        for i in 0..ds.n_rows() {
            assert_eq!(a.predict_row(ds.row(i)), b.predict_row(ds.row(i)));
        }
    }

    #[test]
    fn invalid_subsample_is_rejected() {
        let ds = piecewise_dataset(4, 50);
        let mut gbt = FastTreeRegressor::new(FastTreeConfig {
            subsample: 0.0,
            ..FastTreeConfig::default()
        });
        assert!(gbt.fit(&ds).is_err());
        let mut gbt = FastTreeRegressor::new(FastTreeConfig {
            subsample: 1.5,
            ..FastTreeConfig::default()
        });
        assert!(gbt.fit(&ds).is_err());
    }

    #[test]
    fn rejects_empty_data() {
        let ds = Dataset::new(vec!["x".into()]);
        let mut gbt = FastTreeRegressor::paper_default(0);
        assert!(gbt.fit(&ds).is_err());
        assert_eq!(gbt.predict_row(&[0.0]), 0.0);
    }

    #[test]
    fn constant_target_predicts_that_constant() {
        let ds = Dataset::from_rows(
            vec!["x".into()],
            (0..20).map(|i| vec![i as f64]).collect(),
            vec![42.0; 20],
        )
        .unwrap();
        let mut gbt = FastTreeRegressor::paper_default(1);
        gbt.fit(&ds).unwrap();
        let p = gbt.predict_row(&[5.5]);
        assert!((p - 42.0).abs() < 1.0, "p = {p}");
    }
}
