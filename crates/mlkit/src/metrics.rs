//! Regression quality reports in the paper's vocabulary.
//!
//! Every evaluation table in the paper reports some subset of: Pearson correlation,
//! median relative error, 95th-percentile relative error, and coverage.
//! [`RegressionReport`] packages the first three for a set of predictions; coverage is
//! a property of the model *store* (how many operator instances have a matching model)
//! and is computed by `cleo-core`.

use cleo_common::stats::{self, AccuracySummary};

/// Prediction-quality metrics for one model on one evaluation set.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionReport {
    /// Number of evaluated (prediction, actual) pairs.
    pub n: usize,
    /// Pearson correlation between predictions and actuals.
    pub pearson: f64,
    /// Median relative error, in percent.
    pub median_error_pct: f64,
    /// 95th-percentile relative error, in percent.
    pub p95_error_pct: f64,
}

impl RegressionReport {
    /// Compute the report from paired predictions and actuals.
    pub fn compute(predicted: &[f64], actual: &[f64]) -> RegressionReport {
        let s = AccuracySummary::compute(predicted, actual);
        RegressionReport {
            n: s.count,
            pearson: s.pearson,
            median_error_pct: s.median_error_pct,
            p95_error_pct: s.p95_error_pct,
        }
    }

    /// An empty report (no predictions evaluated).
    pub fn empty() -> RegressionReport {
        RegressionReport {
            n: 0,
            pearson: 0.0,
            median_error_pct: 0.0,
            p95_error_pct: 0.0,
        }
    }

    /// Merge several reports weighted by their sample counts (used when aggregating
    /// per-fold cross-validation results).
    pub fn weighted_merge(reports: &[RegressionReport]) -> RegressionReport {
        let total: usize = reports.iter().map(|r| r.n).sum();
        if total == 0 {
            return RegressionReport::empty();
        }
        let w = |f: fn(&RegressionReport) -> f64| -> f64 {
            reports.iter().map(|r| f(r) * r.n as f64).sum::<f64>() / total as f64
        };
        RegressionReport {
            n: total,
            pearson: w(|r| r.pearson),
            median_error_pct: w(|r| r.median_error_pct),
            p95_error_pct: w(|r| r.p95_error_pct),
        }
    }
}

/// R² (coefficient of determination). Not reported in the paper's tables but useful in
/// unit tests and ablations.
pub fn r_squared(predicted: &[f64], actual: &[f64]) -> f64 {
    if predicted.len() != actual.len() || actual.len() < 2 {
        return 0.0;
    }
    let mean = stats::mean(actual);
    let ss_tot: f64 = actual.iter().map(|a| (a - mean) * (a - mean)).sum();
    let ss_res: f64 = predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a) * (p - a))
        .sum();
    if ss_tot <= 0.0 {
        return 0.0;
    }
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_on_perfect_predictions() {
        let a = [1.0, 5.0, 10.0, 50.0];
        let r = RegressionReport::compute(&a, &a);
        assert_eq!(r.n, 4);
        assert!((r.pearson - 1.0).abs() < 1e-12);
        assert!(r.median_error_pct < 1e-9);
        assert!(r.p95_error_pct < 1e-9);
        assert!((r_squared(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn report_detects_scale_errors() {
        let actual = [10.0, 20.0, 30.0, 40.0];
        let pred: Vec<f64> = actual.iter().map(|a| a * 3.0).collect();
        let r = RegressionReport::compute(&pred, &actual);
        // Correlated but biased: correlation 1, median error 200%.
        assert!((r.pearson - 1.0).abs() < 1e-9);
        assert!((r.median_error_pct - 200.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_merge_uses_sample_counts() {
        let a = RegressionReport {
            n: 10,
            pearson: 1.0,
            median_error_pct: 10.0,
            p95_error_pct: 20.0,
        };
        let b = RegressionReport {
            n: 30,
            pearson: 0.6,
            median_error_pct: 50.0,
            p95_error_pct: 100.0,
        };
        let m = RegressionReport::weighted_merge(&[a, b]);
        assert_eq!(m.n, 40);
        assert!((m.pearson - 0.7).abs() < 1e-12);
        assert!((m.median_error_pct - 40.0).abs() < 1e-12);
        assert_eq!(
            RegressionReport::weighted_merge(&[]),
            RegressionReport::empty()
        );
    }

    #[test]
    fn r_squared_degenerate_cases() {
        assert_eq!(r_squared(&[1.0], &[1.0]), 0.0);
        assert_eq!(r_squared(&[1.0, 2.0], &[5.0, 5.0]), 0.0);
    }
}
