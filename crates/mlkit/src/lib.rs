//! From-scratch machine-learning toolkit for the Cleo reproduction.
//!
//! The paper (Section 3.4, Tables 4 and 6) evaluates five regression families as
//! candidate cost models — elastic net, decision tree, random forest, FastTree
//! (a MART-style gradient-boosted tree ensemble), and a small multilayer perceptron —
//! plus Poisson regression for the CardLearner baseline.  None of those are available
//! as allowed dependencies, so this crate implements all of them from scratch on top of
//! a tiny dense-matrix [`dataset`] layer.
//!
//! Key properties mirrored from the paper:
//!
//! * Targets are trained on **mean squared log error** by default
//!   ([`loss::Loss::MeanSquaredLogError`]): models fit `log(1 + y)` and predictions are
//!   exponentiated back, which minimises relative error, penalises under-estimation,
//!   and keeps predictions positive (Section 3.2).
//! * [`elastic_net::ElasticNet`] performs automatic feature selection through the L1
//!   penalty — the reason the paper prefers it for the thousands of small, noisy
//!   per-subgraph training sets.
//! * [`gbt::FastTreeRegressor`] is a MART-style boosted ensemble with per-tree
//!   subsampling (rate 0.9 in the paper), used as the combined meta-learner.
//! * [`cv`] provides k-fold cross-validation used for every "5-fold CV" table.

pub mod cv;
pub mod dataset;
pub mod decision_tree;
pub mod elastic_net;
pub mod gbt;
pub mod linear_gd;
pub mod loss;
pub mod matrix;
pub mod metrics;
pub mod mlp;
pub mod model;
pub mod poisson;
pub mod random_forest;
pub mod scaler;
pub mod simd;

pub use dataset::Dataset;
pub use decision_tree::{DecisionTreeRegressor, TreeNode};
pub use elastic_net::ElasticNet;
pub use gbt::FastTreeRegressor;
pub use loss::Loss;
pub use matrix::FeatureMatrix;
pub use metrics::RegressionReport;
pub use mlp::MlpRegressor;
pub use model::{Regressor, RegressorKind};
pub use poisson::PoissonRegressor;
pub use random_forest::RandomForestRegressor;
