//! Dense, row-major training datasets.
//!
//! A [`Dataset`] couples a feature matrix with a target vector and the feature names.
//! The learners in this crate are trained on small, wide datasets (the paper's
//! per-subgraph models have 25–30 candidate features and frequently fewer than 30
//! samples), so a simple `Vec<f64>` row-major layout is both adequate and cache
//! friendly.

use std::sync::Arc;

use cleo_common::{CleoError, Result};

/// A dense dataset: `n_rows × n_cols` features plus one target per row.
///
/// Feature names are held behind an `Arc` so the thousands of per-signature
/// training sets built from one telemetry window share a single name table
/// instead of cloning 30-odd `String`s per fit.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    feature_names: Arc<[String]>,
    n_cols: usize,
    /// Row-major feature values, length `n_rows * n_cols`.
    values: Vec<f64>,
    targets: Vec<f64>,
}

impl Dataset {
    /// Create an empty dataset with the given feature names.
    pub fn new(feature_names: Vec<String>) -> Self {
        Self::with_shared_names(feature_names.into())
    }

    /// Create an empty dataset over an already-shared feature-name table
    /// (the per-signature training path shares one table across every fit).
    pub fn with_shared_names(feature_names: Arc<[String]>) -> Self {
        let n_cols = feature_names.len();
        Dataset {
            feature_names,
            n_cols,
            values: Vec::new(),
            targets: Vec::new(),
        }
    }

    /// Create a dataset from rows of features and targets.
    pub fn from_rows(
        feature_names: Vec<String>,
        rows: Vec<Vec<f64>>,
        targets: Vec<f64>,
    ) -> Result<Self> {
        Self::from_row_refs(
            feature_names.into(),
            rows.iter().map(|r| r.as_slice()),
            targets,
        )
    }

    /// Borrowing constructor: build a dataset by copying feature rows straight
    /// out of their owners (e.g. the telemetry window's samples) into the flat
    /// buffer — no intermediate `Vec<Vec<f64>>` materialisation and no per-fit
    /// clone of the name table.
    pub fn from_row_refs<'a>(
        feature_names: Arc<[String]>,
        rows: impl IntoIterator<Item = &'a [f64]>,
        targets: Vec<f64>,
    ) -> Result<Self> {
        let mut ds = Dataset::with_shared_names(feature_names);
        let mut rows = rows.into_iter();
        let mut n_rows = 0usize;
        // Targets lead the zip: when they run out no row has been consumed yet,
        // so a surplus feature row is counted below instead of silently lost.
        for (&t, row) in targets.iter().zip(rows.by_ref()) {
            ds.push_row(row, t)?;
            n_rows += 1;
        }
        let extra_rows = rows.count();
        if n_rows != targets.len() || extra_rows > 0 {
            return Err(CleoError::InvalidTrainingData(format!(
                "{} feature rows but {} targets",
                n_rows + extra_rows,
                targets.len()
            )));
        }
        Ok(ds)
    }

    /// Append one sample.
    pub fn push_row(&mut self, row: &[f64], target: f64) -> Result<()> {
        if row.len() != self.n_cols {
            return Err(CleoError::InvalidTrainingData(format!(
                "row has {} features, expected {}",
                row.len(),
                self.n_cols
            )));
        }
        if !row.iter().all(|v| v.is_finite()) || !target.is_finite() {
            return Err(CleoError::InvalidTrainingData(
                "non-finite feature or target value".into(),
            ));
        }
        self.values.extend_from_slice(row);
        self.targets.push(target);
        Ok(())
    }

    /// Number of samples.
    pub fn n_rows(&self) -> usize {
        self.targets.len()
    }

    /// Number of features.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// True when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Feature names, in column order.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// A cheaply clonable handle to the shared feature-name table.
    pub fn feature_names_shared(&self) -> Arc<[String]> {
        Arc::clone(&self.feature_names)
    }

    /// Mutable access to the flat row-major feature buffer (length
    /// `n_rows * n_cols`) — what the scaler's whole-dataset sweep rewrites in
    /// place.
    pub(crate) fn feature_values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Feature row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.values[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Target value of row `i`.
    pub fn target(&self, i: usize) -> f64 {
        self.targets[i]
    }

    /// All targets.
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// Column `j` as an owned vector.
    pub fn column(&self, j: usize) -> Vec<f64> {
        (0..self.n_rows()).map(|i| self.row(i)[j]).collect()
    }

    /// Return a new dataset containing the rows at `indices` (duplicates allowed,
    /// which is what bootstrap sampling needs).
    pub fn select_rows(&self, indices: &[usize]) -> Dataset {
        let mut ds = Dataset::with_shared_names(Arc::clone(&self.feature_names));
        for &i in indices {
            ds.values.extend_from_slice(self.row(i));
            ds.targets.push(self.targets[i]);
        }
        ds
    }

    /// Return a dataset with the same rows but targets replaced by `targets`
    /// (used by boosting to fit residuals).
    pub fn with_targets(&self, targets: Vec<f64>) -> Result<Dataset> {
        if targets.len() != self.n_rows() {
            return Err(CleoError::InvalidTrainingData(format!(
                "{} targets for {} rows",
                targets.len(),
                self.n_rows()
            )));
        }
        Ok(Dataset {
            feature_names: Arc::clone(&self.feature_names),
            n_cols: self.n_cols,
            values: self.values.clone(),
            targets,
        })
    }

    /// Split into (train, test) with the first `n_train` rows in train — callers shuffle
    /// indices beforehand when a random split is wanted.
    pub fn split_at(&self, n_train: usize) -> (Dataset, Dataset) {
        let n_train = n_train.min(self.n_rows());
        let train_idx: Vec<usize> = (0..n_train).collect();
        let test_idx: Vec<usize> = (n_train..self.n_rows()).collect();
        (self.select_rows(&train_idx), self.select_rows(&test_idx))
    }

    /// Mean of each feature column.
    pub fn column_means(&self) -> Vec<f64> {
        let n = self.n_rows().max(1) as f64;
        let mut means = vec![0.0; self.n_cols];
        for i in 0..self.n_rows() {
            for (j, v) in self.row(i).iter().enumerate() {
                means[j] += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        means
    }

    /// Standard deviation of each feature column (population).
    pub fn column_stds(&self) -> Vec<f64> {
        let n = self.n_rows().max(1) as f64;
        let means = self.column_means();
        let mut vars = vec![0.0; self.n_cols];
        for i in 0..self.n_rows() {
            for (j, v) in self.row(i).iter().enumerate() {
                let d = v - means[j];
                vars[j] += d * d;
            }
        }
        vars.iter().map(|v| (v / n).sqrt()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("f{i}")).collect()
    }

    #[test]
    fn push_and_access_rows() {
        let mut ds = Dataset::new(names(2));
        ds.push_row(&[1.0, 2.0], 10.0).unwrap();
        ds.push_row(&[3.0, 4.0], 20.0).unwrap();
        assert_eq!(ds.n_rows(), 2);
        assert_eq!(ds.n_cols(), 2);
        assert_eq!(ds.row(1), &[3.0, 4.0]);
        assert_eq!(ds.target(0), 10.0);
        assert_eq!(ds.column(1), vec![2.0, 4.0]);
        assert!(!ds.is_empty());
    }

    #[test]
    fn rejects_wrong_width_and_nonfinite() {
        let mut ds = Dataset::new(names(2));
        assert!(ds.push_row(&[1.0], 1.0).is_err());
        assert!(ds.push_row(&[1.0, f64::NAN], 1.0).is_err());
        assert!(ds.push_row(&[1.0, 2.0], f64::INFINITY).is_err());
        assert!(ds.is_empty());
    }

    #[test]
    fn from_rows_validates_lengths() {
        let err = Dataset::from_rows(names(1), vec![vec![1.0]], vec![1.0, 2.0]);
        assert!(err.is_err());
        let ok = Dataset::from_rows(names(1), vec![vec![1.0], vec![2.0]], vec![1.0, 2.0]);
        assert_eq!(ok.unwrap().n_rows(), 2);
        // One extra row must also be rejected (not silently dropped).
        let extra = Dataset::from_rows(
            names(1),
            vec![vec![1.0], vec![2.0], vec![3.0]],
            vec![1.0, 2.0],
        );
        assert!(extra.is_err());
    }

    #[test]
    fn from_row_refs_borrows_and_validates() {
        let names: std::sync::Arc<[String]> = vec!["a".to_string()].into();
        let rows = [vec![1.0], vec![2.0]];
        let ds = Dataset::from_row_refs(
            std::sync::Arc::clone(&names),
            rows.iter().map(|r| r.as_slice()),
            vec![10.0, 20.0],
        )
        .unwrap();
        assert_eq!(ds.n_rows(), 2);
        assert_eq!(ds.targets(), &[10.0, 20.0]);
        // Extra row and missing row are both errors.
        let three = [vec![1.0], vec![2.0], vec![3.0]];
        assert!(Dataset::from_row_refs(
            std::sync::Arc::clone(&names),
            three.iter().map(|r| r.as_slice()),
            vec![1.0, 2.0],
        )
        .is_err());
        assert!(Dataset::from_row_refs(
            names,
            rows.iter().map(|r| r.as_slice()).take(1),
            vec![1.0, 2.0],
        )
        .is_err());
    }

    #[test]
    fn select_rows_allows_duplicates() {
        let ds = Dataset::from_rows(
            names(1),
            vec![vec![1.0], vec![2.0], vec![3.0]],
            vec![10.0, 20.0, 30.0],
        )
        .unwrap();
        let sub = ds.select_rows(&[2, 2, 0]);
        assert_eq!(sub.n_rows(), 3);
        assert_eq!(sub.targets(), &[30.0, 30.0, 10.0]);
        assert_eq!(sub.row(0), &[3.0]);
    }

    #[test]
    fn with_targets_replaces_only_targets() {
        let ds = Dataset::from_rows(names(1), vec![vec![1.0], vec![2.0]], vec![5.0, 6.0]).unwrap();
        let res = ds.with_targets(vec![0.5, -0.5]).unwrap();
        assert_eq!(res.targets(), &[0.5, -0.5]);
        assert_eq!(res.row(0), ds.row(0));
        assert!(ds.with_targets(vec![1.0]).is_err());
    }

    #[test]
    fn split_and_moments() {
        let ds = Dataset::from_rows(
            names(2),
            vec![
                vec![1.0, 10.0],
                vec![3.0, 30.0],
                vec![5.0, 50.0],
                vec![7.0, 70.0],
            ],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap();
        let (tr, te) = ds.split_at(3);
        assert_eq!(tr.n_rows(), 3);
        assert_eq!(te.n_rows(), 1);
        let means = ds.column_means();
        assert!((means[0] - 4.0).abs() < 1e-12);
        assert!((means[1] - 40.0).abs() < 1e-12);
        let stds = ds.column_stds();
        assert!((stds[0] - 5.0f64.sqrt()).abs() < 1e-12);
    }
}
