//! Runtime-dispatched SIMD kernels for the inference hot path.
//!
//! Three kernels dominate uncached costing: the elastic-net dot products, the
//! depth-3 oblivious FastTree walk of the combined meta-model, and the
//! standard-scaler whole-dataset sweep.  All three are vectorised with **lanes
//! across rows** (an array-of-lanes layout): an 8-row block is transposed into
//! lane-major order (`block[feature * 8 + lane]`), lane `l` carries row `l`'s
//! accumulator, and every per-row floating-point operation happens in exactly
//! the order the scalar reference (`predict_row`) uses.
//!
//! # Bit-identity contract
//!
//! Every kernel here must produce **bitwise** the same doubles as the scalar
//! path, which the inference-equivalence and zero-alloc test suites pin:
//!
//! * lanes map to *rows*, never to summation terms — each row's dot product
//!   accumulates `x[0]*w[0] + x[1]*w[1] + …` in index order, exactly like the
//!   scalar loop;
//! * multiply-then-add only: a fused multiply-add rounds once where the scalar
//!   chain rounds twice, so the AVX2 arms deliberately use `mul` + `add` even
//!   when FMA hardware is present;
//! * tree comparisons use the descent's own `!(x <= t)` predicate (NaN goes
//!   right, matching the sequential walk), and the leaf index is pure boolean
//!   algebra over the comparison bits — no floating-point reassociation at all;
//! * element-wise kernels (the scaler's `(v - mean) / std`) are trivially
//!   identical: IEEE subtraction and division are exact single operations.
//!
//! # Dispatch
//!
//! One binary serves every ISA: [`active_isa`] probes the CPU once
//! (`is_x86_feature_detected!("avx2")`) and caches the answer.  The portable
//! fallback is the same array-of-lanes loop written in plain Rust, which LLVM
//! autovectorises for whatever target it compiles on — and stays the reference
//! the AVX2 arm must match bit for bit.  Setting the `CLEO_FORCE_SCALAR`
//! environment variable (to anything but `0` or empty) pins the scalar arm, so
//! CI exercises both paths on the same hardware.  Benches report the dispatched
//! arm through [`isa_name`].

use std::cell::Cell;
use std::sync::OnceLock;

/// Rows per lane block (the `f64x8` shape: two 4-wide accumulator chains on
/// AVX2, so the serial per-lane add chains of 8 rows overlap).
pub const LANES: usize = 8;

/// The instruction-set arm the kernels dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// Portable array-of-lanes Rust (autovectorised by LLVM where possible).
    Scalar,
    /// Explicit 256-bit `std::arch` intrinsics (x86-64 with AVX2 detected).
    Avx2,
    /// Explicit 512-bit `std::arch` intrinsics (x86-64 with AVX-512F detected):
    /// one `zmm` holds all eight lanes and the tree walk's comparisons produce
    /// `__mmask8` bits directly.
    Avx512,
}

impl Isa {
    /// Every arm, in preference order (fastest first) — what the equivalence
    /// tests iterate over.
    pub const ALL: [Isa; 3] = [Isa::Avx512, Isa::Avx2, Isa::Scalar];

    /// Whether this arm can run on the current CPU.
    pub fn supported(self) -> bool {
        match self {
            Isa::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            Isa::Avx512 => is_x86_feature_detected!("avx512f"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// The name benches record in their JSON (`simd` field).
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
        }
    }
}

/// The arm every kernel dispatches to, probed once per process: the fastest
/// supported arm, unless `CLEO_FORCE_SCALAR` is set.
pub fn active_isa() -> Isa {
    static ISA: OnceLock<Isa> = OnceLock::new();
    *ISA.get_or_init(|| {
        let forced =
            std::env::var_os("CLEO_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != *"0");
        if forced {
            return Isa::Scalar;
        }
        Isa::ALL
            .into_iter()
            .find(|isa| isa.supported())
            .unwrap_or(Isa::Scalar)
    })
}

/// The dispatched arm's name — what bench JSON records as `simd`.
pub fn isa_name() -> &'static str {
    active_isa().name()
}

thread_local! {
    /// Reused lane-block scratch: one transpose buffer per thread, grown during
    /// warmup and then stable — the zero-alloc guarantee of the sweep path
    /// covers it.
    static LANE_BLOCK: Cell<Vec<f64>> = const { Cell::new(Vec::new()) };
}

/// Run `f` with this thread's reusable lane-block buffer.  The buffer is moved
/// out for the duration (a re-entrant call sees a fresh empty `Vec` instead of
/// panicking) and moved back afterwards, capacity intact.
pub fn with_lane_block<R>(f: impl FnOnce(&mut Vec<f64>) -> R) -> R {
    LANE_BLOCK.with(|cell| {
        let mut buf = cell.take();
        let out = f(&mut buf);
        cell.set(buf);
        out
    })
}

/// Transpose [`LANES`] contiguous row-major rows (`rows.len() == LANES *
/// n_cols`) into lane-major order: `block[j * LANES + lane] = rows[lane][j]`.
/// The block keeps its allocation across calls (`resize` only grows).
/// Pure data movement, so the arms are trivially identical; the AVX-512 arm
/// moves 8×8 tiles with in-register shuffles instead of 64 strided stores.
pub fn transpose_block(rows: &[f64], n_cols: usize, block: &mut Vec<f64>) {
    debug_assert_eq!(rows.len(), LANES * n_cols);
    if block.len() != n_cols * LANES {
        block.resize(n_cols * LANES, 0.0);
    }
    #[cfg(target_arch = "x86_64")]
    if active_isa() == Isa::Avx512 {
        unsafe { transpose_block_avx512(rows, n_cols, block) };
        return;
    }
    transpose_block_scalar(rows, n_cols, block);
}

fn transpose_block_scalar(rows: &[f64], n_cols: usize, block: &mut [f64]) {
    for lane in 0..LANES {
        let row = &rows[lane * n_cols..(lane + 1) * n_cols];
        for (j, &v) in row.iter().enumerate() {
            block[j * LANES + lane] = v;
        }
    }
}

/// 8×8 tiles via the classic three-stage double transpose: `unpacklo/hi_pd`
/// pairs adjacent rows within 128-bit sublanes, then two `shuffle_f64x2`
/// stages place the 128-bit blocks — 24 shuffles per 64 elements.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn transpose_block_avx512(rows: &[f64], n_cols: usize, block: &mut [f64]) {
    use std::arch::x86_64::*;
    let tiles = n_cols / 8 * 8;
    let mut j = 0usize;
    while j < tiles {
        let ld = |lane: usize| _mm512_loadu_pd(rows.as_ptr().add(lane * n_cols + j));
        let (r0, r1, r2, r3) = (ld(0), ld(1), ld(2), ld(3));
        let (r4, r5, r6, r7) = (ld(4), ld(5), ld(6), ld(7));
        // Sublane k of t0 = (r0[2k], r1[2k]); t1 the odd columns; etc.
        let t0 = _mm512_unpacklo_pd(r0, r1);
        let t1 = _mm512_unpackhi_pd(r0, r1);
        let t2 = _mm512_unpacklo_pd(r2, r3);
        let t3 = _mm512_unpackhi_pd(r2, r3);
        let t4 = _mm512_unpacklo_pd(r4, r5);
        let t5 = _mm512_unpackhi_pd(r4, r5);
        let t6 = _mm512_unpacklo_pd(r6, r7);
        let t7 = _mm512_unpackhi_pd(r6, r7);
        // 0x88 selects blocks [0,2] of each source, 0xDD blocks [1,3].
        let m0 = _mm512_shuffle_f64x2::<0x88>(t0, t2);
        let m1 = _mm512_shuffle_f64x2::<0x88>(t4, t6);
        let m2 = _mm512_shuffle_f64x2::<0xDD>(t0, t2);
        let m3 = _mm512_shuffle_f64x2::<0xDD>(t4, t6);
        let m4 = _mm512_shuffle_f64x2::<0x88>(t1, t3);
        let m5 = _mm512_shuffle_f64x2::<0x88>(t5, t7);
        let m6 = _mm512_shuffle_f64x2::<0xDD>(t1, t3);
        let m7 = _mm512_shuffle_f64x2::<0xDD>(t5, t7);
        let mut st =
            |jj: usize, v: __m512d| _mm512_storeu_pd(block.as_mut_ptr().add(jj * LANES), v);
        st(j, _mm512_shuffle_f64x2::<0x88>(m0, m1));
        st(j + 1, _mm512_shuffle_f64x2::<0x88>(m4, m5));
        st(j + 2, _mm512_shuffle_f64x2::<0x88>(m2, m3));
        st(j + 3, _mm512_shuffle_f64x2::<0x88>(m6, m7));
        st(j + 4, _mm512_shuffle_f64x2::<0xDD>(m0, m1));
        st(j + 5, _mm512_shuffle_f64x2::<0xDD>(m4, m5));
        st(j + 6, _mm512_shuffle_f64x2::<0xDD>(m2, m3));
        st(j + 7, _mm512_shuffle_f64x2::<0xDD>(m6, m7));
        j += 8;
    }
    for jj in j..n_cols {
        for lane in 0..LANES {
            block[jj * LANES + lane] = rows[lane * n_cols + jj];
        }
    }
}

// --------------------------------------------------------------------------
// Elastic-net dot products: 8 rows per block, per-lane accumulation in
// feature-index order.
// --------------------------------------------------------------------------

/// Dot product of 8 lane-major rows against one weight vector.  Lane `l`'s
/// result is bitwise `Σ_j block[j*8+l] * w[j]` accumulated in `j` order — the
/// scalar `predict_row` chain.  `weights` shorter than the block's column count
/// truncates the sum (zip semantics), matching the scalar reference.
#[inline]
pub fn dot8(block: &[f64], weights: &[f64]) -> [f64; 8] {
    dot8_with(active_isa(), block, weights)
}

/// [`dot8`] pinned to an explicit arm (property tests compare the arms
/// directly).  `isa` must be [`Isa::supported`] on this CPU.
pub fn dot8_with(isa: Isa, block: &[f64], weights: &[f64]) -> [f64; 8] {
    debug_assert!(isa.supported());
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { dot8_avx2(block, weights) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe { dot8_avx512(block, weights) },
        _ => dot8_scalar(block, weights),
    }
}

fn dot8_scalar(block: &[f64], weights: &[f64]) -> [f64; 8] {
    let mut acc = [0.0f64; 8];
    for (lanes, &wj) in block.chunks_exact(LANES).zip(weights) {
        for (a, &x) in acc.iter_mut().zip(lanes) {
            *a += x * wj;
        }
    }
    acc
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot8_avx2(block: &[f64], weights: &[f64]) -> [f64; 8] {
    use std::arch::x86_64::*;
    // Two independent 4-lane accumulator chains; mul-then-add (never FMA) keeps
    // each lane's rounding sequence identical to the scalar chain.
    let mut a0 = _mm256_setzero_pd();
    let mut a1 = _mm256_setzero_pd();
    for (lanes, &wj) in block.chunks_exact(LANES).zip(weights) {
        let w = _mm256_set1_pd(wj);
        let p = lanes.as_ptr();
        a0 = _mm256_add_pd(a0, _mm256_mul_pd(_mm256_loadu_pd(p), w));
        a1 = _mm256_add_pd(a1, _mm256_mul_pd(_mm256_loadu_pd(p.add(4)), w));
    }
    let mut out = [0.0f64; 8];
    _mm256_storeu_pd(out.as_mut_ptr(), a0);
    _mm256_storeu_pd(out.as_mut_ptr().add(4), a1);
    out
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn dot8_avx512(block: &[f64], weights: &[f64]) -> [f64; 8] {
    use std::arch::x86_64::*;
    // One zmm carries all eight lanes; per-lane the adds still happen in `j`
    // order (the scalar chain), mul-then-add with no FMA contraction.
    let mut acc = _mm512_setzero_pd();
    for (lanes, &wj) in block.chunks_exact(LANES).zip(weights) {
        let x = _mm512_loadu_pd(lanes.as_ptr());
        acc = _mm512_add_pd(acc, _mm512_mul_pd(x, _mm512_set1_pd(wj)));
    }
    let mut out = [0.0f64; 8];
    _mm512_storeu_pd(out.as_mut_ptr(), acc);
    out
}

// --------------------------------------------------------------------------
// Depth-3 oblivious tree walk: evaluate all seven splits of a tree across 8
// rows at once, then gather leaves branchlessly.
// --------------------------------------------------------------------------

/// Add `lr * tree(row_l)` onto `acc[l]` for every tree, over a lane-major
/// block.  `splits[t][k]`/`leaves[t]` are the complete depth-3 tables of tree
/// `t` (slot 0 unused, slots 1–7 the heap-ordered splits).  Per lane the
/// additions happen in tree order — the scalar accumulation sequence — and the
/// leaf choice reproduces the sequential descent exactly (see
/// [`leaf_masks`]).
#[inline]
pub fn tree8_depth3_accumulate(
    splits: &[[(u32, f64); 8]],
    leaves: &[[f64; 8]],
    lr: f64,
    block: &[f64],
    acc: &mut [f64; 8],
) {
    tree8_depth3_accumulate_with(active_isa(), splits, leaves, lr, block, acc)
}

/// [`tree8_depth3_accumulate`] pinned to an explicit arm.
pub fn tree8_depth3_accumulate_with(
    isa: Isa,
    splits: &[[(u32, f64); 8]],
    leaves: &[[f64; 8]],
    lr: f64,
    block: &[f64],
    acc: &mut [f64; 8],
) {
    debug_assert!(isa.supported());
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { tree8_avx2(splits, leaves, lr, block, acc) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe { tree8_avx512(splits, leaves, lr, block, acc) },
        _ => tree8_scalar(splits, leaves, lr, block, acc),
    }
}

/// Combine the seven per-split lane masks into per-lane leaf indices and
/// accumulate.  The sequential descent picks `c1 = cmp(1)`, `b2 = [c2,c3][c1]`,
/// `b3 = [c4,c5,c6,c7][2*c1+b2]`, landing on leaf `4*c1 + 2*b2 + b3`; the
/// selects are pure boolean functions of the comparison bits, so they evaluate
/// for all 8 lanes at once as mask algebra — bit-identical leaf choice, no
/// per-lane table indexing.
#[inline(always)]
fn accumulate_leaves(m: &[u32; 8], lrow: &[f64; 8], lr: f64, acc: &mut [f64; 8]) {
    let c1 = m[1];
    let b2 = (c1 & m[3]) | (!c1 & m[2]);
    let b3 = (!c1 & !b2 & m[4]) | (!c1 & b2 & m[5]) | (c1 & !b2 & m[6]) | (c1 & b2 & m[7]);
    for (l, a) in acc.iter_mut().enumerate() {
        let leaf = (((c1 >> l) & 1) << 2) | (((b2 >> l) & 1) << 1) | ((b3 >> l) & 1);
        *a += lr * lrow[leaf as usize];
    }
}

/// Per-split lane masks: bit `l` of `m[k]` is the descent predicate
/// `!(row_l[feature_k] <= threshold_k)` (NaN parity with the node walk).
// `!(x <= t)` is deliberate: it goes right exactly when the walk's `x <= t`
// (go left) is false, including for NaN rows.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
#[inline(always)]
fn leaf_masks(srow: &[(u32, f64); 8], block: &[f64]) -> [u32; 8] {
    let mut m = [0u32; 8];
    for (k, &(f, t)) in srow.iter().enumerate().skip(1) {
        let lanes = &block[f as usize * LANES..f as usize * LANES + LANES];
        let mut bits = 0u32;
        for (l, &x) in lanes.iter().enumerate() {
            bits |= u32::from(!(x <= t)) << l;
        }
        m[k] = bits;
    }
    m
}

fn tree8_scalar(
    splits: &[[(u32, f64); 8]],
    leaves: &[[f64; 8]],
    lr: f64,
    block: &[f64],
    acc: &mut [f64; 8],
) {
    for (srow, lrow) in splits.iter().zip(leaves) {
        let m = leaf_masks(srow, block);
        accumulate_leaves(&m, lrow, lr, acc);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn tree8_avx2(
    splits: &[[(u32, f64); 8]],
    leaves: &[[f64; 8]],
    lr: f64,
    block: &[f64],
    acc: &mut [f64; 8],
) {
    use std::arch::x86_64::*;
    // Everything stays in vector registers: the seven split comparisons yield
    // all-ones/all-zeros lane masks, `b2`/`b3` are the descent's selects as
    // `blendv` over those masks, the leaf index is `(c1&4)|(b2&2)|(b3&1)` in
    // the integer domain, and `vpgatherqpd` fetches each lane's leaf double
    // unchanged — bit-identical to the sequential walk with no scalar epilogue.
    #[inline(always)]
    unsafe fn leaf_select(
        c: &[__m256d; 8],
        lrow: &[f64; 8],
        lrv: __m256d,
        acc: __m256d,
    ) -> __m256d {
        // blendv picks its second operand where the mask is set: b2 = c1?c3:c2,
        // b3 = [c4,c5,c6,c7][2*c1+b2] — the node walk's selects, lane-parallel.
        let b2 = _mm256_blendv_pd(c[2], c[3], c[1]);
        let b3 = _mm256_blendv_pd(
            _mm256_blendv_pd(c[4], c[5], b2),
            _mm256_blendv_pd(c[6], c[7], b2),
            c[1],
        );
        let idx = _mm256_or_si256(
            _mm256_and_si256(_mm256_castpd_si256(c[1]), _mm256_set1_epi64x(4)),
            _mm256_or_si256(
                _mm256_and_si256(_mm256_castpd_si256(b2), _mm256_set1_epi64x(2)),
                _mm256_and_si256(_mm256_castpd_si256(b3), _mm256_set1_epi64x(1)),
            ),
        );
        let leaf = _mm256_i64gather_pd::<8>(lrow.as_ptr(), idx);
        // Mul-then-add (never FMA): the scalar chain rounds twice per tree.
        _mm256_add_pd(acc, _mm256_mul_pd(lrv, leaf))
    }
    let lrv = _mm256_set1_pd(lr);
    let mut lo = _mm256_loadu_pd(acc.as_ptr());
    let mut hi = _mm256_loadu_pd(acc.as_ptr().add(4));
    for (srow, lrow) in splits.iter().zip(leaves) {
        // One pass over the seven splits computes both halves' masks with the
        // threshold broadcast shared, and the two accumulator chains (low/high
        // four lanes) stay independent so their latency overlaps.
        let mut clo = [_mm256_setzero_pd(); 8];
        let mut chi = [_mm256_setzero_pd(); 8];
        for (k, &(f, t)) in srow.iter().enumerate().skip(1) {
            let p = block.as_ptr().add(f as usize * LANES);
            let tv = _mm256_set1_pd(t);
            // NLE (unordered, quiet) is the vector form of `!(x <= t)`:
            // true for x > t and for NaN, exactly the descent predicate.
            clo[k] = _mm256_cmp_pd::<_CMP_NLE_UQ>(_mm256_loadu_pd(p), tv);
            chi[k] = _mm256_cmp_pd::<_CMP_NLE_UQ>(_mm256_loadu_pd(p.add(4)), tv);
        }
        lo = leaf_select(&clo, lrow, lrv, lo);
        hi = leaf_select(&chi, lrow, lrv, hi);
    }
    _mm256_storeu_pd(acc.as_mut_ptr(), lo);
    _mm256_storeu_pd(acc.as_mut_ptr().add(4), hi);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn tree8_avx512(
    splits: &[[(u32, f64); 8]],
    leaves: &[[f64; 8]],
    lr: f64,
    block: &[f64],
    acc: &mut [f64; 8],
) {
    use std::arch::x86_64::*;
    // One zmm holds the whole lane block: each comparison produces a `__mmask8`
    // whose bit `l` is lane `l`'s descent predicate, so the leaf-index algebra
    // of [`accumulate_leaves`] runs as three plain `u8` expressions, and
    // `vpermutexvar_pd` replaces the gather — the leaf table is a register.
    let lrv = _mm512_set1_pd(lr);
    let mut a = _mm512_loadu_pd(acc.as_ptr());
    for (srow, lrow) in splits.iter().zip(leaves) {
        let mut m = [0u8; 8];
        for (k, &(f, t)) in srow.iter().enumerate().skip(1) {
            let x = _mm512_loadu_pd(block.as_ptr().add(f as usize * LANES));
            // NLE (unordered, quiet) = `!(x <= t)`: true for x > t and NaN.
            m[k] = _mm512_cmp_pd_mask::<_CMP_NLE_UQ>(x, _mm512_set1_pd(t));
        }
        let c1 = m[1];
        let b2 = (c1 & m[3]) | (!c1 & m[2]);
        let b3 = (!c1 & !b2 & m[4]) | (!c1 & b2 & m[5]) | (c1 & !b2 & m[6]) | (c1 & b2 & m[7]);
        // Per-lane leaf index 4*c1 + 2*b2 + b3, assembled lane-parallel.
        let idx = _mm512_or_epi64(
            _mm512_maskz_set1_epi64(c1, 4),
            _mm512_or_epi64(
                _mm512_maskz_set1_epi64(b2, 2),
                _mm512_maskz_set1_epi64(b3, 1),
            ),
        );
        let leaf = _mm512_permutexvar_pd(idx, _mm512_loadu_pd(lrow.as_ptr()));
        // Mul-then-add (never FMA): the scalar chain rounds twice per tree.
        a = _mm512_add_pd(a, _mm512_mul_pd(lrv, leaf));
    }
    _mm512_storeu_pd(acc.as_mut_ptr(), a);
}

// --------------------------------------------------------------------------
// Standard-scaler whole-dataset sweep.
// --------------------------------------------------------------------------

/// Standardise a row-major buffer in place: `v = (v - means[j]) / stds[j]` for
/// every row's column `j`.  Element-wise IEEE subtract/divide — bit-identical
/// to the per-row scalar transform on any arm.
pub fn scale_shift_rows(values: &mut [f64], means: &[f64], stds: &[f64]) {
    scale_shift_rows_with(active_isa(), values, means, stds)
}

/// [`scale_shift_rows`] pinned to an explicit arm.
pub fn scale_shift_rows_with(isa: Isa, values: &mut [f64], means: &[f64], stds: &[f64]) {
    debug_assert!(isa.supported());
    assert_eq!(means.len(), stds.len(), "scaler parameter width mismatch");
    let n_cols = means.len();
    if n_cols == 0 || values.is_empty() {
        return;
    }
    assert_eq!(values.len() % n_cols, 0, "buffer is not whole rows");
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { scale_shift_avx2(values, means, stds) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe { scale_shift_avx512(values, means, stds) },
        _ => scale_shift_scalar(values, means, stds),
    }
}

fn scale_shift_scalar(values: &mut [f64], means: &[f64], stds: &[f64]) {
    for row in values.chunks_exact_mut(means.len()) {
        for ((v, &m), &s) in row.iter_mut().zip(means).zip(stds) {
            *v = (*v - m) / s;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn scale_shift_avx2(values: &mut [f64], means: &[f64], stds: &[f64]) {
    use std::arch::x86_64::*;
    let n_cols = means.len();
    let quads = n_cols / 4 * 4;
    for row in values.chunks_exact_mut(n_cols) {
        let mut j = 0usize;
        while j < quads {
            let v = _mm256_loadu_pd(row.as_ptr().add(j));
            let m = _mm256_loadu_pd(means.as_ptr().add(j));
            let s = _mm256_loadu_pd(stds.as_ptr().add(j));
            _mm256_storeu_pd(
                row.as_mut_ptr().add(j),
                _mm256_div_pd(_mm256_sub_pd(v, m), s),
            );
            j += 4;
        }
        for jj in j..n_cols {
            row[jj] = (row[jj] - means[jj]) / stds[jj];
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn scale_shift_avx512(values: &mut [f64], means: &[f64], stds: &[f64]) {
    use std::arch::x86_64::*;
    let n_cols = means.len();
    let octs = n_cols / 8 * 8;
    for row in values.chunks_exact_mut(n_cols) {
        let mut j = 0usize;
        while j < octs {
            let v = _mm512_loadu_pd(row.as_ptr().add(j));
            let m = _mm512_loadu_pd(means.as_ptr().add(j));
            let s = _mm512_loadu_pd(stds.as_ptr().add(j));
            _mm512_storeu_pd(
                row.as_mut_ptr().add(j),
                _mm512_div_pd(_mm512_sub_pd(v, m), s),
            );
            j += 8;
        }
        for jj in j..n_cols {
            row[jj] = (row[jj] - means[jj]) / stds[jj];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_of(rows: &[Vec<f64>]) -> Vec<f64> {
        let n_cols = rows[0].len();
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let mut block = Vec::new();
        transpose_block(&flat, n_cols, &mut block);
        block
    }

    fn rows8(n_cols: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = cleo_common::rng::DetRng::new(seed);
        (0..LANES)
            .map(|_| (0..n_cols).map(|_| rng.uniform(-3.0, 3.0)).collect())
            .collect()
    }

    #[test]
    fn isa_name_is_one_of_the_documented_arms() {
        assert!(matches!(isa_name(), "avx512" | "avx2" | "scalar"));
        assert!(Isa::Scalar.supported());
        assert_eq!(active_isa().name(), isa_name());
    }

    #[test]
    fn dot8_matches_per_row_scalar_reference() {
        let rows = rows8(13, 7);
        let weights: Vec<f64> = (0..13).map(|j| (j as f64 - 6.0) * 0.37).collect();
        let block = block_of(&rows);
        let got = dot8(&block, &weights);
        for (l, row) in rows.iter().enumerate() {
            let want: f64 = row.iter().zip(&weights).map(|(x, w)| x * w).sum();
            assert_eq!(got[l].to_bits(), want.to_bits(), "lane {l}");
        }
    }

    #[test]
    fn both_arms_agree_when_avx2_is_available() {
        let rows = rows8(9, 11);
        let weights: Vec<f64> = (0..9).map(|j| 0.1 + j as f64).collect();
        let block = block_of(&rows);
        if Isa::Avx2.supported() {
            assert_eq!(
                dot8_with(Isa::Avx2, &block, &weights),
                dot8_with(Isa::Scalar, &block, &weights)
            );
        }
    }

    #[test]
    fn scale_shift_matches_row_transform() {
        let mut values: Vec<f64> = (0..30).map(|i| i as f64 * 1.7 - 11.0).collect();
        let means = [1.0, -2.0, 0.5];
        let stds = [2.0, 0.25, 3.0];
        let want: Vec<f64> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (v - means[i % 3]) / stds[i % 3])
            .collect();
        scale_shift_rows(&mut values, &means, &stds);
        assert_eq!(values, want);
    }

    #[test]
    fn lane_block_is_reused_not_reallocated() {
        with_lane_block(|block| {
            transpose_block(&vec![1.0; LANES * 4], 4, block);
            assert_eq!(block.len(), 32);
        });
        with_lane_block(|block| {
            assert!(block.capacity() >= 32, "buffer must persist across calls");
        });
    }
}
