//! Multilayer-perceptron regressor (the paper's "Neural network" baseline).
//!
//! Section 3.4 lists the configuration: 3 layers (input → one hidden layer of size 30
//! → output), ReLU activation, Adam optimiser, L2 regularisation 0.005, trained on the
//! mean-squared-log-error objective.  The paper finds that on the small, noisy
//! per-subgraph training sets the MLP over-fits and under-performs the simpler elastic
//! net — a relationship our cross-validation experiments reproduce.

use crate::dataset::Dataset;
use crate::loss::TargetTransform;
use crate::model::Regressor;
use crate::scaler::StandardScaler;
use cleo_common::rng::DetRng;
use cleo_common::{CleoError, Result};

/// Configuration for [`MlpRegressor`].
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    /// Hidden-layer width (the paper uses 30).
    pub hidden_size: usize,
    /// L2 regularisation strength (the paper uses 0.005).
    pub l2: f64,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Number of full-batch epochs.
    pub epochs: usize,
    /// Seed for weight initialisation.
    pub seed: u64,
    /// Target transform (log space by default, matching the MSLE objective).
    pub target_transform: TargetTransform,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden_size: 30,
            l2: 0.005,
            learning_rate: 0.01,
            epochs: 400,
            seed: 0,
            target_transform: TargetTransform::Log1p,
        }
    }
}

/// A single-hidden-layer MLP trained with Adam.
#[derive(Debug, Clone)]
pub struct MlpRegressor {
    config: MlpConfig,
    scaler: Option<StandardScaler>,
    /// Hidden weights, `hidden_size × n_features`, row-major.
    w1: Vec<f64>,
    b1: Vec<f64>,
    /// Output weights, length `hidden_size`.
    w2: Vec<f64>,
    b2: f64,
    n_features: usize,
    fitted: bool,
}

impl MlpRegressor {
    /// Create an MLP with an explicit configuration.
    pub fn new(config: MlpConfig) -> Self {
        MlpRegressor {
            config,
            scaler: None,
            w1: Vec::new(),
            b1: Vec::new(),
            w2: Vec::new(),
            b2: 0.0,
            n_features: 0,
            fitted: false,
        }
    }

    /// The paper's configuration (hidden 30, ReLU, Adam, L2 = 0.005).
    pub fn paper_default(seed: u64) -> Self {
        MlpRegressor::new(MlpConfig {
            seed,
            ..MlpConfig::default()
        })
    }

    fn forward(&self, x: &[f64]) -> (Vec<f64>, f64) {
        let h = self.config.hidden_size;
        let d = self.n_features;
        let mut hidden = vec![0.0; h];
        for (j, hj) in hidden.iter_mut().enumerate() {
            let mut z = self.b1[j];
            for (k, &xk) in x.iter().enumerate().take(d) {
                z += self.w1[j * d + k] * xk;
            }
            *hj = z.max(0.0); // ReLU
        }
        let mut out = self.b2;
        for (w2j, hj) in self.w2.iter().zip(&hidden) {
            out += w2j * hj;
        }
        (hidden, out)
    }
}

/// Adam optimiser state for one parameter vector.
#[derive(Debug, Clone)]
struct Adam {
    m: Vec<f64>,
    v: Vec<f64>,
    t: usize,
    lr: f64,
}

impl Adam {
    fn new(len: usize, lr: f64) -> Self {
        Adam {
            m: vec![0.0; len],
            v: vec![0.0; len],
            t: 0,
            lr,
        }
    }

    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        self.t += 1;
        let t = self.t as f64;
        for i in 0..params.len() {
            self.m[i] = B1 * self.m[i] + (1.0 - B1) * grads[i];
            self.v[i] = B2 * self.v[i] + (1.0 - B2) * grads[i] * grads[i];
            let m_hat = self.m[i] / (1.0 - B1.powf(t));
            let v_hat = self.v[i] / (1.0 - B2.powf(t));
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + EPS);
        }
    }
}

impl Regressor for MlpRegressor {
    fn fit(&mut self, data: &Dataset) -> Result<()> {
        if data.is_empty() {
            return Err(CleoError::InvalidTrainingData(
                "mlp requires at least one sample".into(),
            ));
        }
        let n = data.n_rows();
        let d = data.n_cols();
        let h = self.config.hidden_size;
        self.n_features = d;

        let scaler = StandardScaler::fit(data);
        let xs: Vec<Vec<f64>> = (0..n).map(|i| scaler.transform_row(data.row(i))).collect();
        let y = self.config.target_transform.forward_all(data.targets());

        // He initialisation for the ReLU layer.
        let mut rng = DetRng::new(self.config.seed);
        let scale1 = (2.0 / d as f64).sqrt();
        let scale2 = (2.0 / h as f64).sqrt();
        self.w1 = (0..h * d).map(|_| rng.normal(0.0, scale1)).collect();
        self.b1 = vec![0.0; h];
        self.w2 = (0..h).map(|_| rng.normal(0.0, scale2)).collect();
        self.b2 = y.iter().sum::<f64>() / n as f64;

        let mut adam_w1 = Adam::new(h * d, self.config.learning_rate);
        let mut adam_b1 = Adam::new(h, self.config.learning_rate);
        let mut adam_w2 = Adam::new(h, self.config.learning_rate);
        let mut adam_b2 = Adam::new(1, self.config.learning_rate);
        let l2 = self.config.l2;
        let nf = n as f64;

        for _ in 0..self.config.epochs {
            let mut g_w1 = vec![0.0; h * d];
            let mut g_b1 = vec![0.0; h];
            let mut g_w2 = vec![0.0; h];
            let mut g_b2 = vec![0.0; 1];
            for (x, &t) in xs.iter().zip(y.iter()) {
                let (hidden, out) = self.forward(x);
                let err = 2.0 * (out - t) / nf; // dMSE/dout
                g_b2[0] += err;
                for j in 0..h {
                    g_w2[j] += err * hidden[j];
                    if hidden[j] > 0.0 {
                        let back = err * self.w2[j];
                        g_b1[j] += back;
                        for (k, &xk) in x.iter().enumerate() {
                            g_w1[j * d + k] += back * xk;
                        }
                    }
                }
            }
            // L2 regularisation on the weights (not the biases).
            for (g, w) in g_w1.iter_mut().zip(self.w1.iter()) {
                *g += l2 * w;
            }
            for (g, w) in g_w2.iter_mut().zip(self.w2.iter()) {
                *g += l2 * w;
            }
            adam_w1.step(&mut self.w1, &g_w1);
            adam_b1.step(&mut self.b1, &g_b1);
            adam_w2.step(&mut self.w2, &g_w2);
            let mut b2_arr = [self.b2];
            adam_b2.step(&mut b2_arr, &g_b2);
            self.b2 = b2_arr[0];
        }

        self.scaler = Some(scaler);
        self.fitted = true;
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        if !self.fitted {
            return 0.0;
        }
        let scaler = self.scaler.as_ref().expect("fitted model has a scaler");
        let x = scaler.transform_row(row);
        let (_, out) = self.forward(&x);
        self.config.target_transform.inverse(out)
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }

    fn name(&self) -> &'static str {
        "Neural Network"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cleo_common::rng::DetRng;
    use cleo_common::stats;

    fn smooth_dataset(seed: u64, n: usize) -> Dataset {
        let mut rng = DetRng::new(seed);
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        for _ in 0..n {
            let a = rng.uniform(0.0, 10.0);
            let b = rng.uniform(0.0, 10.0);
            rows.push(vec![a, b]);
            targets.push((a * b + 2.0 * a).max(0.0));
        }
        Dataset::from_rows(vec!["a".into(), "b".into()], rows, targets).unwrap()
    }

    #[test]
    fn learns_smooth_interaction() {
        let ds = smooth_dataset(1, 300);
        let mut mlp = MlpRegressor::paper_default(3);
        mlp.fit(&ds).unwrap();
        let preds = mlp.predict(&ds);
        let corr = stats::pearson(&preds, ds.targets());
        assert!(corr > 0.9, "corr = {corr}");
        assert!(preds.iter().all(|&p| p >= 0.0 && p.is_finite()));
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = smooth_dataset(2, 80);
        let mut a = MlpRegressor::paper_default(5);
        let mut b = MlpRegressor::paper_default(5);
        a.fit(&ds).unwrap();
        b.fit(&ds).unwrap();
        for i in 0..ds.n_rows() {
            assert_eq!(a.predict_row(ds.row(i)), b.predict_row(ds.row(i)));
        }
    }

    #[test]
    fn rejects_empty_data() {
        let ds = Dataset::new(vec!["x".into()]);
        let mut mlp = MlpRegressor::paper_default(0);
        assert!(mlp.fit(&ds).is_err());
        assert_eq!(mlp.predict_row(&[1.0]), 0.0);
    }

    #[test]
    fn tiny_training_sets_still_fit_without_nan() {
        // The over-fitting regime the paper describes: more parameters than samples.
        let ds = Dataset::from_rows(
            vec!["a".into(), "b".into(), "c".into()],
            vec![
                vec![1.0, 2.0, 3.0],
                vec![2.0, 1.0, 0.0],
                vec![5.0, 5.0, 5.0],
                vec![0.5, 9.0, 2.0],
                vec![7.0, 3.0, 1.0],
            ],
            vec![10.0, 5.0, 50.0, 20.0, 35.0],
        )
        .unwrap();
        let mut mlp = MlpRegressor::paper_default(1);
        mlp.fit(&ds).unwrap();
        for i in 0..ds.n_rows() {
            assert!(mlp.predict_row(ds.row(i)).is_finite());
        }
    }
}
