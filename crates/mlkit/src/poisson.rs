//! Poisson regression — the learner behind the CardLearner baseline.
//!
//! The paper compares Cleo against CardLearner (Wu et al., cited as [47]), which
//! improves *cardinality* estimates with a Poisson regression model but keeps the
//! default cost model.  Poisson regression models a non-negative count-like target
//! `y` as `E[y | x] = exp(w·x + b)` and maximises the Poisson log-likelihood; we fit
//! it with full-batch gradient ascent over standardised features.

use crate::dataset::Dataset;
use crate::model::Regressor;
use crate::scaler::StandardScaler;
use cleo_common::{CleoError, Result};

/// Configuration for [`PoissonRegressor`].
#[derive(Debug, Clone, PartialEq)]
pub struct PoissonConfig {
    /// L2 regularisation strength.
    pub l2: f64,
    /// Learning rate for gradient ascent.
    pub learning_rate: f64,
    /// Number of full-batch epochs.
    pub epochs: usize,
    /// Clamp on the linear predictor to keep `exp` finite.
    pub max_linear: f64,
}

impl Default for PoissonConfig {
    fn default() -> Self {
        PoissonConfig {
            l2: 1e-4,
            learning_rate: 0.05,
            epochs: 500,
            max_linear: 30.0,
        }
    }
}

/// Poisson (log-linear) regression.
#[derive(Debug, Clone)]
pub struct PoissonRegressor {
    config: PoissonConfig,
    scaler: Option<StandardScaler>,
    weights: Vec<f64>,
    intercept: f64,
    fitted: bool,
}

impl PoissonRegressor {
    /// Create a regressor with an explicit configuration.
    pub fn new(config: PoissonConfig) -> Self {
        PoissonRegressor {
            config,
            scaler: None,
            weights: Vec::new(),
            intercept: 0.0,
            fitted: false,
        }
    }

    /// Default configuration used by the CardLearner baseline.
    pub fn cardlearner_default() -> Self {
        PoissonRegressor::new(PoissonConfig::default())
    }

    fn linear(&self, std_row: &[f64]) -> f64 {
        let z: f64 = std_row
            .iter()
            .zip(self.weights.iter())
            .map(|(x, w)| x * w)
            .sum::<f64>()
            + self.intercept;
        z.clamp(-self.config.max_linear, self.config.max_linear)
    }
}

impl Regressor for PoissonRegressor {
    fn fit(&mut self, data: &Dataset) -> Result<()> {
        if data.is_empty() {
            return Err(CleoError::InvalidTrainingData(
                "poisson regression requires at least one sample".into(),
            ));
        }
        if data.targets().iter().any(|&y| y < 0.0) {
            return Err(CleoError::InvalidTrainingData(
                "poisson regression requires non-negative targets".into(),
            ));
        }
        let n = data.n_rows();
        let d = data.n_cols();
        let scaler = StandardScaler::fit(data);
        let xs: Vec<Vec<f64>> = (0..n).map(|i| scaler.transform_row(data.row(i))).collect();
        let y = data.targets();

        self.weights = vec![0.0; d];
        // Start the intercept at log(mean(y)) so the initial rate matches the data scale.
        let mean_y = (y.iter().sum::<f64>() / n as f64).max(1e-9);
        self.intercept = mean_y.ln();

        let lr = self.config.learning_rate;
        let nf = n as f64;
        for _ in 0..self.config.epochs {
            let mut g_w = vec![0.0; d];
            let mut g_b = 0.0;
            for (x, &t) in xs.iter().zip(y.iter()) {
                let mu = self.linear(x).exp();
                // Gradient of the negative log-likelihood: (mu - y) * x, scaled by the
                // mean target so the step size is insensitive to the target magnitude
                // (the curvature of the Poisson deviance grows with the rate).
                let err = (mu - t) / (nf * mean_y);
                g_b += err;
                for (j, &xj) in x.iter().enumerate() {
                    g_w[j] += err * xj;
                }
            }
            for (j, gw) in g_w.iter_mut().enumerate() {
                *gw += self.config.l2 * self.weights[j];
                self.weights[j] -= lr * *gw;
            }
            self.intercept -= lr * g_b;
        }

        self.scaler = Some(scaler);
        self.fitted = true;
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        if !self.fitted {
            return 0.0;
        }
        let scaler = self.scaler.as_ref().expect("fitted model has a scaler");
        self.linear(&scaler.transform_row(row)).exp()
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }

    fn name(&self) -> &'static str {
        "Poisson Regression"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cleo_common::rng::DetRng;
    use cleo_common::stats;

    #[test]
    fn fits_multiplicative_cardinality_data() {
        // Cardinality-like target: y = 100 * exp(0.5*x0 - 0.3*x1) with Poisson-ish noise.
        let mut rng = DetRng::new(1);
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        for _ in 0..300 {
            let x0 = rng.uniform(0.0, 4.0);
            let x1 = rng.uniform(0.0, 4.0);
            let rate = 100.0 * (0.5 * x0 - 0.3 * x1).exp();
            rows.push(vec![x0, x1]);
            targets.push(rate * rng.lognormal_noise(0.1));
        }
        let ds = Dataset::from_rows(vec!["x0".into(), "x1".into()], rows, targets).unwrap();
        let mut m = PoissonRegressor::cardlearner_default();
        m.fit(&ds).unwrap();
        let preds = m.predict(&ds);
        let corr = stats::pearson(&preds, ds.targets());
        assert!(corr > 0.9, "corr = {corr}");
        assert!(preds.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn rejects_negative_targets_and_empty_data() {
        let ds = Dataset::from_rows(vec!["x".into()], vec![vec![1.0]], vec![-1.0]).unwrap();
        let mut m = PoissonRegressor::cardlearner_default();
        assert!(m.fit(&ds).is_err());
        let empty = Dataset::new(vec!["x".into()]);
        assert!(m.fit(&empty).is_err());
        assert_eq!(m.predict_row(&[1.0]), 0.0);
    }

    #[test]
    fn predictions_stay_finite_for_extreme_inputs() {
        let ds = Dataset::from_rows(
            vec!["x".into()],
            vec![vec![1.0], vec![2.0], vec![3.0]],
            vec![10.0, 20.0, 40.0],
        )
        .unwrap();
        let mut m = PoissonRegressor::cardlearner_default();
        m.fit(&ds).unwrap();
        let p = m.predict_row(&[1e12]);
        assert!(p.is_finite());
    }
}
