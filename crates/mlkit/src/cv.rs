//! K-fold cross-validation.
//!
//! Tables 1, 4 and 6 and Figure 11 of the paper all report 5-fold cross-validation
//! numbers.  [`kfold_cross_validate`] shuffles the dataset deterministically, splits it
//! into `k` folds, trains a fresh model (via the supplied factory) on `k−1` folds, and
//! evaluates on the held-out fold; predictions across all folds are concatenated so the
//! caller can compute overall metrics or CDFs.

use crate::dataset::Dataset;
use crate::metrics::RegressionReport;
use crate::model::Regressor;
use cleo_common::rng::DetRng;
use cleo_common::{CleoError, Result};

/// Output of a cross-validation run: out-of-fold predictions aligned with actuals.
#[derive(Debug, Clone)]
pub struct CvOutcome {
    /// Out-of-fold predictions, one per dataset row (in evaluation order).
    pub predictions: Vec<f64>,
    /// Actual targets in the same order.
    pub actuals: Vec<f64>,
    /// Per-fold reports.
    pub fold_reports: Vec<RegressionReport>,
}

impl CvOutcome {
    /// Overall report over the pooled out-of-fold predictions.
    pub fn overall(&self) -> RegressionReport {
        RegressionReport::compute(&self.predictions, &self.actuals)
    }
}

/// Run `k`-fold cross-validation.  `factory` builds a fresh, unfitted model for each
/// fold (it receives the fold index, which can be folded into the model's seed).
pub fn kfold_cross_validate<F>(
    data: &Dataset,
    k: usize,
    seed: u64,
    mut factory: F,
) -> Result<CvOutcome>
where
    F: FnMut(usize) -> Box<dyn Regressor>,
{
    if k < 2 {
        return Err(CleoError::Config(format!("k must be >= 2, got {k}")));
    }
    if data.n_rows() < k {
        return Err(CleoError::InvalidTrainingData(format!(
            "{} samples cannot be split into {} folds",
            data.n_rows(),
            k
        )));
    }
    let n = data.n_rows();
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = DetRng::new(seed);
    rng.shuffle(&mut order);

    let mut predictions = Vec::with_capacity(n);
    let mut actuals = Vec::with_capacity(n);
    let mut fold_reports = Vec::with_capacity(k);

    for fold in 0..k {
        let test_idx: Vec<usize> = order
            .iter()
            .enumerate()
            .filter(|(pos, _)| pos % k == fold)
            .map(|(_, &i)| i)
            .collect();
        let train_idx: Vec<usize> = order
            .iter()
            .enumerate()
            .filter(|(pos, _)| pos % k != fold)
            .map(|(_, &i)| i)
            .collect();

        let train = data.select_rows(&train_idx);
        let test = data.select_rows(&test_idx);
        let mut model = factory(fold);
        model.fit(&train)?;
        let fold_preds = model.predict(&test);
        fold_reports.push(RegressionReport::compute(&fold_preds, test.targets()));
        predictions.extend_from_slice(&fold_preds);
        actuals.extend_from_slice(test.targets());
    }

    Ok(CvOutcome {
        predictions,
        actuals,
        fold_reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elastic_net::{ElasticNet, ElasticNetConfig};
    use crate::loss::TargetTransform;
    use cleo_common::rng::DetRng;

    fn linear_dataset(n: usize) -> Dataset {
        let mut rng = DetRng::new(99);
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        for _ in 0..n {
            let a = rng.uniform(0.0, 10.0);
            let b = rng.uniform(0.0, 10.0);
            rows.push(vec![a, b]);
            targets.push(2.0 * a + b + rng.normal(0.0, 0.1));
        }
        Dataset::from_rows(vec!["a".into(), "b".into()], rows, targets).unwrap()
    }

    fn net_factory(_fold: usize) -> Box<dyn Regressor> {
        let cfg = ElasticNetConfig {
            alpha: 0.01,
            target_transform: TargetTransform::Identity,
            ..Default::default()
        };
        Box::new(ElasticNet::new(cfg))
    }

    #[test]
    fn five_fold_covers_every_sample_once() {
        let ds = linear_dataset(103);
        let cv = kfold_cross_validate(&ds, 5, 1, net_factory).unwrap();
        assert_eq!(cv.predictions.len(), 103);
        assert_eq!(cv.actuals.len(), 103);
        assert_eq!(cv.fold_reports.len(), 5);
        let per_fold: usize = cv.fold_reports.iter().map(|r| r.n).sum();
        assert_eq!(per_fold, 103);
        // Linear data → excellent out-of-fold accuracy.
        let overall = cv.overall();
        assert!(overall.pearson > 0.99);
        assert!(overall.median_error_pct < 5.0);
    }

    #[test]
    fn rejects_bad_parameters() {
        let ds = linear_dataset(10);
        assert!(kfold_cross_validate(&ds, 1, 0, net_factory).is_err());
        let tiny = linear_dataset(3);
        assert!(kfold_cross_validate(&tiny, 5, 0, net_factory).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = linear_dataset(60);
        let a = kfold_cross_validate(&ds, 5, 7, net_factory).unwrap();
        let b = kfold_cross_validate(&ds, 5, 7, net_factory).unwrap();
        assert_eq!(a.predictions, b.predictions);
        let c = kfold_cross_validate(&ds, 5, 8, net_factory).unwrap();
        assert_ne!(a.actuals, c.actuals); // different shuffle order
    }
}
