//! Elastic net regression via cyclic coordinate descent.
//!
//! Elastic net (Zou & Hastie, cited as [53] in the paper) is the paper's learner of
//! choice for the individual cost models: with 25–30 candidate features and often
//! fewer than 30 noisy samples per operator-subgraph, the combined L1/L2 penalty
//! performs automatic feature selection and resists over-fitting, while staying
//! interpretable (a weighted sum of statistics, like the hand-written cost models it
//! replaces).  The paper's hyper-parameters are `alpha = 1.0`, `l1_ratio = 0.5`,
//! `fit_intercept = true`, trained on the mean-squared-log-error objective — i.e.
//! squared error on `log1p(target)`.

use crate::dataset::Dataset;
use crate::loss::TargetTransform;
use crate::model::Regressor;
use crate::scaler::StandardScaler;
use cleo_common::{CleoError, Result};

/// Configuration for [`ElasticNet`].
#[derive(Debug, Clone, PartialEq)]
pub struct ElasticNetConfig {
    /// Overall regularisation strength (the paper uses 1.0).
    pub alpha: f64,
    /// Mix between L1 (1.0) and L2 (0.0) penalties (the paper uses 0.5).
    pub l1_ratio: f64,
    /// Whether to fit an intercept term (the paper uses true).
    pub fit_intercept: bool,
    /// Maximum number of coordinate-descent sweeps.
    pub max_iter: usize,
    /// Convergence tolerance on the maximum coefficient update.
    pub tol: f64,
    /// Target transform; `Log1p` reproduces the paper's MSLE objective.
    pub target_transform: TargetTransform,
}

impl Default for ElasticNetConfig {
    fn default() -> Self {
        ElasticNetConfig {
            alpha: 1.0,
            l1_ratio: 0.5,
            fit_intercept: true,
            max_iter: 200,
            tol: 1e-6,
            target_transform: TargetTransform::Log1p,
        }
    }
}

/// Elastic-net linear regression.
#[derive(Debug, Clone)]
pub struct ElasticNet {
    config: ElasticNetConfig,
    /// Weights in raw (unstandardised) feature space.
    weights: Vec<f64>,
    intercept: f64,
    fitted: bool,
    /// Optional raw-space weight vector seeding the next [`ElasticNet::fit`]
    /// (warm start), consumed by that fit.  The objective is convex, so the
    /// seed changes where the descent *starts*, not where it converges — a good
    /// seed (e.g. the incumbent model of a feedback epoch refitting a drifted
    /// signature) just reaches the tolerance in fewer sweeps.
    warm_start: Option<Vec<f64>>,
}

impl ElasticNet {
    /// Create an elastic net with an explicit configuration.
    pub fn new(config: ElasticNetConfig) -> Self {
        ElasticNet {
            config,
            weights: Vec::new(),
            intercept: 0.0,
            fitted: false,
            warm_start: None,
        }
    }

    /// The paper's hyper-parameters (α = 1.0, l1_ratio = 0.5, intercept, MSLE).
    pub fn paper_default() -> Self {
        ElasticNet::new(ElasticNetConfig::default())
    }

    /// An elastic net trained on the raw target (ordinary squared error); used by the
    /// loss-function comparison and by callers that pre-transform targets themselves.
    pub fn with_identity_target(mut config: ElasticNetConfig) -> Self {
        config.target_transform = TargetTransform::Identity;
        ElasticNet::new(config)
    }

    /// Reassemble a model from persisted parts — the inverse of reading
    /// [`ElasticNet::config`] / [`ElasticNet::weights`] /
    /// [`ElasticNet::intercept`].  Used by the snapshot codec: the restored
    /// model predicts bit-identically to the saved one (prediction is a pure
    /// function of config, weights, and intercept; no refit happens and no
    /// warm start is carried).
    pub fn from_parts(
        config: ElasticNetConfig,
        weights: Vec<f64>,
        intercept: f64,
        fitted: bool,
    ) -> ElasticNet {
        ElasticNet {
            config,
            weights,
            intercept,
            fitted,
            warm_start: None,
        }
    }

    /// Learned weights in raw feature space (empty before fitting).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Learned intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &ElasticNetConfig {
        &self.config
    }

    /// Number of non-zero weights — the "selected" features.
    pub fn n_selected(&self) -> usize {
        self.weights.iter().filter(|w| w.abs() > 1e-12).count()
    }

    /// Seed the next [`ElasticNet::fit`] from a raw-feature-space weight vector
    /// (typically the incumbent model's [`ElasticNet::weights`]).  The seed is
    /// consumed by that fit — a later refit starts cold again unless re-seeded —
    /// and is ignored when its length does not match the training data's
    /// column count.
    pub fn set_warm_start(&mut self, raw_weights: Vec<f64>) {
        self.warm_start = Some(raw_weights);
    }

    fn soft_threshold(z: f64, gamma: f64) -> f64 {
        if z > gamma {
            z - gamma
        } else if z < -gamma {
            z + gamma
        } else {
            0.0
        }
    }

    /// Append the raw linear term (`Σ x[j]·w[j]`, no intercept, no transform)
    /// of every row onto `out`.  Full 8-row blocks run through the lane-blocked
    /// SIMD dot kernel; the ragged tail falls back to the scalar loop.  Each
    /// row's accumulation order is exactly `predict_row`'s
    /// (`x[0]*w[0] + x[1]*w[1] + …`), so both paths are bit-identical.
    fn linear_batch_into(&self, rows: &crate::matrix::FeatureMatrix, out: &mut Vec<f64>) {
        let w = &self.weights;
        let n = rows.n_rows();
        let mut i = 0usize;
        if n >= crate::simd::LANES {
            crate::simd::with_lane_block(|block| {
                while i + crate::simd::LANES <= n {
                    crate::simd::transpose_block(
                        rows.rows_flat(i, crate::simd::LANES),
                        rows.n_cols(),
                        block,
                    );
                    out.extend_from_slice(&crate::simd::dot8(block, w));
                    i += crate::simd::LANES;
                }
            });
        }
        for k in i..n {
            out.push(rows.row(k).iter().zip(w).map(|(x, wj)| x * wj).sum::<f64>());
        }
    }

    /// Batched prediction with the inverse target transform and the
    /// floor/ceiling clamp **fused into one pass** over the output slice: the
    /// separate clamp sweep the model store used to run is folded into the
    /// epilogue that already walks the fresh predictions.  Produces bitwise
    /// `predict_row(row).clamp(floor, ceiling)` for every row.
    pub fn predict_batch_clamped_into(
        &self,
        rows: &crate::matrix::FeatureMatrix,
        out: &mut Vec<f64>,
        floor: f64,
        ceiling: f64,
    ) {
        let start = out.len();
        if !self.fitted {
            out.extend(rows.rows().map(|_| 0.0f64.clamp(floor, ceiling)));
            return;
        }
        self.linear_batch_into(rows, out);
        let t = self.config.target_transform;
        for p in &mut out[start..] {
            *p = t.inverse(*p + self.intercept).clamp(floor, ceiling);
        }
    }
}

impl Regressor for ElasticNet {
    fn fit(&mut self, data: &Dataset) -> Result<()> {
        if data.is_empty() {
            return Err(CleoError::InvalidTrainingData(
                "elastic net requires at least one sample".into(),
            ));
        }
        let n = data.n_rows();
        let d = data.n_cols();
        let transform = self.config.target_transform;
        let y: Vec<f64> = transform.forward_all(data.targets());

        // Standardise features; coordinate descent operates in standardised space and
        // the learned weights are mapped back to raw space afterwards.
        let scaler = StandardScaler::fit(data);
        let std_data = scaler.transform(data);

        let y_mean = if self.config.fit_intercept {
            y.iter().sum::<f64>() / n as f64
        } else {
            0.0
        };
        let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();

        // Precompute column norms (columns are standardised, but constant columns have
        // zero variance and must be skipped).
        let mut col_sq = vec![0.0; d];
        for i in 0..n {
            for (j, &v) in std_data.row(i).iter().enumerate() {
                col_sq[j] += v * v;
            }
        }

        let alpha = self.config.alpha.max(0.0);
        let l1 = alpha * self.config.l1_ratio;
        let l2 = alpha * (1.0 - self.config.l1_ratio);
        let nf = n as f64;

        let mut w = vec![0.0; d];
        // `take()`: the seed applies to exactly this fit, so a later refit of
        // the same instance stays a pure function of (config, dataset).
        if let Some(seed) = self.warm_start.take().filter(|s| s.len() == d) {
            // Seed in standardised space (the space the descent runs in).
            w = scaler.scale_weights(&seed);
            for (j, wj) in w.iter_mut().enumerate() {
                // Constant columns are never visited by the descent; a stale
                // seed weight there would survive into the final model.
                if col_sq[j] < 1e-12 {
                    *wj = 0.0;
                }
            }
        }
        // residual r = yc - X w  (equal to yc for the cold start's w = 0)
        let mut residual = yc;
        if w.iter().any(|&wj| wj != 0.0) {
            for (i, r) in residual.iter_mut().enumerate() {
                let row = std_data.row(i);
                *r -= row.iter().zip(&w).map(|(x, wj)| x * wj).sum::<f64>();
            }
        }

        for _ in 0..self.config.max_iter {
            let mut max_update = 0.0f64;
            for j in 0..d {
                if col_sq[j] < 1e-12 {
                    continue;
                }
                // rho = (1/n) * x_j · (r + x_j * w_j)
                let mut rho = 0.0;
                for (i, r) in residual.iter().enumerate() {
                    let xij = std_data.row(i)[j];
                    rho += xij * (r + xij * w[j]);
                }
                rho /= nf;
                let denom = col_sq[j] / nf + l2;
                let new_w = Self::soft_threshold(rho, l1) / denom;
                let delta = new_w - w[j];
                if delta != 0.0 {
                    for (i, r) in residual.iter_mut().enumerate() {
                        *r -= std_data.row(i)[j] * delta;
                    }
                    w[j] = new_w;
                }
                max_update = max_update.max(delta.abs());
            }
            if max_update < self.config.tol {
                break;
            }
        }

        let (raw_w, raw_b) = scaler.unscale_weights(&w, y_mean);
        self.weights = raw_w;
        self.intercept = if self.config.fit_intercept {
            raw_b
        } else {
            raw_b - y_mean
        };
        self.fitted = true;
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        if !self.fitted {
            return 0.0;
        }
        let lin: f64 = row
            .iter()
            .zip(self.weights.iter())
            .map(|(x, w)| x * w)
            .sum::<f64>()
            + self.intercept;
        self.config.target_transform.inverse(lin)
    }

    fn predict_batch_into(&self, rows: &crate::matrix::FeatureMatrix, out: &mut Vec<f64>) {
        if !self.fitted {
            out.extend(rows.rows().map(|_| 0.0));
            return;
        }
        // Lane-blocked strided dot products over the flat buffer (8 rows per
        // SIMD block, ragged tail scalar), then the inverse-transform epilogue
        // in one pass.  Each row's own accumulation order is exactly that of
        // `predict_row` — x[0]*w[0] + x[1]*w[1] + … — so every prediction is
        // bit-identical to the row-by-row loop.
        let start = out.len();
        self.linear_batch_into(rows, out);
        let t = self.config.target_transform;
        for p in &mut out[start..] {
            *p = t.inverse(*p + self.intercept);
        }
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }

    fn name(&self) -> &'static str {
        "Elastic net"
    }

    fn feature_weights(&self) -> Option<Vec<f64>> {
        if self.fitted {
            Some(self.weights.clone())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cleo_common::rng::DetRng;
    use cleo_common::stats;

    fn linear_dataset(n: usize, noise: f64, seed: u64) -> Dataset {
        let mut rng = DetRng::new(seed);
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        for _ in 0..n {
            let x0 = rng.uniform(0.0, 10.0);
            let x1 = rng.uniform(0.0, 5.0);
            let x2 = rng.uniform(0.0, 1.0); // irrelevant
            let y = 4.0 * x0 + 2.0 * x1 + rng.normal(0.0, noise);
            rows.push(vec![x0, x1, x2]);
            targets.push(y.max(0.0));
        }
        Dataset::from_rows(
            vec!["x0".into(), "x1".into(), "noise".into()],
            rows,
            targets,
        )
        .unwrap()
    }

    #[test]
    fn recovers_linear_relationship_with_identity_target() {
        let ds = linear_dataset(200, 0.1, 1);
        let cfg = ElasticNetConfig {
            alpha: 0.001, // nearly unregularised
            ..Default::default()
        };
        let mut model = ElasticNet::with_identity_target(cfg);
        model.fit(&ds).unwrap();
        let preds = model.predict(&ds);
        let corr = stats::pearson(&preds, ds.targets());
        assert!(corr > 0.99, "corr = {corr}");
        // Weight on x0 should be close to 4.
        assert!(
            (model.weights()[0] - 4.0).abs() < 0.3,
            "{:?}",
            model.weights()
        );
    }

    #[test]
    fn log_target_handles_multiplicative_data() {
        // y = c * x0 * x1: in log space this is linear in log features, but even on raw
        // features the MSLE fit should give a high rank correlation.
        let mut rng = DetRng::new(5);
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        for _ in 0..150 {
            let x0 = rng.uniform(1.0, 100.0);
            let x1 = rng.uniform(1.0, 10.0);
            rows.push(vec![x0, x1, x0 * x1]);
            targets.push(0.5 * x0 * x1 * rng.lognormal_noise(0.1));
        }
        let ds = Dataset::from_rows(vec!["x0".into(), "x1".into(), "x0x1".into()], rows, targets)
            .unwrap();
        let mut model = ElasticNet::paper_default();
        model.fit(&ds).unwrap();
        let preds = model.predict(&ds);
        assert!(
            preds.iter().all(|&p| p >= 0.0),
            "log target keeps predictions positive"
        );
        let corr = stats::pearson(&preds, ds.targets());
        assert!(corr > 0.9, "corr = {corr}");
    }

    #[test]
    fn l1_penalty_zeroes_irrelevant_features() {
        let ds = linear_dataset(100, 0.01, 2);
        let cfg = ElasticNetConfig {
            alpha: 0.5,
            l1_ratio: 1.0, // pure lasso
            target_transform: TargetTransform::Identity,
            ..Default::default()
        };
        let mut model = ElasticNet::new(cfg);
        model.fit(&ds).unwrap();
        // The pure-noise feature should be dropped.
        assert!(model.weights()[2].abs() < 1e-6, "{:?}", model.weights());
        assert!(model.n_selected() <= 2);
    }

    #[test]
    fn strong_regularisation_shrinks_towards_mean() {
        let ds = linear_dataset(50, 0.1, 3);
        let cfg = ElasticNetConfig {
            alpha: 1e6,
            target_transform: TargetTransform::Identity,
            ..Default::default()
        };
        let mut model = ElasticNet::new(cfg);
        model.fit(&ds).unwrap();
        let mean_y = stats::mean(ds.targets());
        // All weights ~0, prediction ~ mean of y.
        let pred = model.predict_row(ds.row(0));
        assert!((pred - mean_y).abs() < 1.0, "pred {pred} vs mean {mean_y}");
    }

    #[test]
    fn fit_rejects_empty_data() {
        let ds = Dataset::new(vec!["a".into()]);
        let mut model = ElasticNet::paper_default();
        assert!(model.fit(&ds).is_err());
        assert!(!model.is_fitted());
        assert_eq!(model.predict_row(&[1.0]), 0.0);
    }

    #[test]
    fn handles_constant_columns() {
        let ds = Dataset::from_rows(
            vec!["c".into(), "x".into()],
            vec![
                vec![7.0, 1.0],
                vec![7.0, 2.0],
                vec![7.0, 3.0],
                vec![7.0, 4.0],
            ],
            vec![2.0, 4.0, 6.0, 8.0],
        )
        .unwrap();
        let cfg = ElasticNetConfig {
            alpha: 0.001,
            target_transform: TargetTransform::Identity,
            ..Default::default()
        };
        let mut model = ElasticNet::new(cfg);
        model.fit(&ds).unwrap();
        let pred = model.predict_row(&[7.0, 2.5]);
        assert!((pred - 5.0).abs() < 0.5, "pred {pred}");
    }

    #[test]
    fn warm_start_converges_to_the_cold_optimum() {
        let ds = linear_dataset(120, 0.1, 11);
        let mut cold = ElasticNet::paper_default();
        cold.fit(&ds).unwrap();

        // Seeding with the converged weights leaves the optimum unchanged.
        let mut rewarm = ElasticNet::paper_default();
        rewarm.set_warm_start(cold.weights().to_vec());
        rewarm.fit(&ds).unwrap();
        for (a, b) in cold.weights().iter().zip(rewarm.weights()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
        assert!((cold.intercept() - rewarm.intercept()).abs() < 1e-6);

        // Seeding from a *near-miss* model (a slightly perturbed incumbent, the
        // feedback-epoch shape) also lands on the same optimum.
        let perturbed: Vec<f64> = cold.weights().iter().map(|w| w * 1.1 + 0.01).collect();
        let mut warm = ElasticNet::paper_default();
        warm.set_warm_start(perturbed);
        warm.fit(&ds).unwrap();
        for (a, b) in cold.weights().iter().zip(warm.weights()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }

        // A seed of the wrong width is ignored, not mis-applied.
        let mut bad = ElasticNet::paper_default();
        bad.set_warm_start(vec![1.0; 99]);
        bad.fit(&ds).unwrap();
        for (a, b) in cold.weights().iter().zip(bad.weights()) {
            assert_eq!(a.to_bits(), b.to_bits(), "wrong-width seed must be a no-op");
        }

        // The seed is consumed by its fit: refitting the same instance starts
        // cold again, bit-identical to a never-seeded fit.
        let mut reused = ElasticNet::paper_default();
        reused.set_warm_start(vec![123.0; 3]);
        reused.fit(&ds).unwrap();
        reused.fit(&ds).unwrap();
        for (a, b) in cold.weights().iter().zip(reused.weights()) {
            assert_eq!(a.to_bits(), b.to_bits(), "stale seed leaked into a refit");
        }
    }

    #[test]
    fn feature_weights_exposed_through_trait() {
        let ds = linear_dataset(50, 0.1, 9);
        let mut model = ElasticNet::paper_default();
        assert!(model.feature_weights().is_none());
        model.fit(&ds).unwrap();
        assert_eq!(model.feature_weights().unwrap().len(), 3);
    }
}
