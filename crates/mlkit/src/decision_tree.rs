//! CART regression trees.
//!
//! The decision-tree cost model in the paper uses depth 15 (Section 3.4) and is also
//! the base learner for both the random forest and the FastTree gradient-boosted
//! ensemble (depth 5, 20 trees).  Splits minimise the sum of squared errors of the
//! children; leaves predict the mean target of their samples.

use crate::dataset::Dataset;
use crate::loss::TargetTransform;
use crate::model::Regressor;
use cleo_common::rng::DetRng;
use cleo_common::{CleoError, Result};

/// Configuration for [`DecisionTreeRegressor`].
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum number of samples required in a leaf.
    pub min_samples_leaf: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// If set, consider only this many randomly chosen features per split
    /// (used by the random forest).
    pub max_features: Option<usize>,
    /// Seed for the feature subsampling RNG.
    pub seed: u64,
    /// Target transform applied before fitting (the standalone paper model uses
    /// `Log1p`; ensemble base learners use `Identity` and transform externally).
    pub target_transform: TargetTransform,
}

impl Default for DecisionTreeConfig {
    fn default() -> Self {
        DecisionTreeConfig {
            max_depth: 15,
            min_samples_leaf: 1,
            min_samples_split: 2,
            max_features: None,
            seed: 0,
            target_transform: TargetTransform::Log1p,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// One node of a fitted tree in persistable form — the exact entry of the
/// tree's node vector (`left`/`right` are indices into that same vector), so
/// an exported tree rebuilds bit-identically via
/// [`DecisionTreeRegressor::from_parts`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TreeNode {
    /// Terminal node carrying its prediction.
    Leaf {
        /// Mean target of the leaf's training rows.
        value: f64,
    },
    /// Internal split: rows with `features[feature] <= threshold` descend to
    /// `left`, the rest to `right`.
    Split {
        /// Feature column tested.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Node index of the left child.
        left: usize,
        /// Node index of the right child.
        right: usize,
    },
}

/// Maximum depth for which a fitted tree is additionally compiled into the
/// complete-layout [`FlatEval`] table (2^8 = 256 leaves; the ensembles' depth
/// 3–5 trees qualify, the standalone depth-15 paper tree keeps the node walk).
const MAX_FLAT_DEPTH: usize = 8;

/// `(depth, splits, leaves)` view of one compiled tree (see
/// [`DecisionTreeRegressor::flat_parts`]).
pub(crate) type FlatParts<'a> = (usize, &'a [(u32, f64)], &'a [f64]);

/// A fitted tree compiled into a complete binary tree laid out in two flat
/// arrays: level-order split records (1-indexed, `idx -> 2*idx + went_right`)
/// and one leaf value per bottom slot.  Evaluation is `depth` comparisons with
/// no pointer chasing and no enum dispatch; shallow leaves are padded downward
/// (their value replicated across every bottom slot of the subtree), so the
/// decision function — and therefore every prediction — is bit-identical to the
/// node walk.
#[derive(Debug, Clone)]
struct FlatEval {
    depth: usize,
    /// `(feature, threshold)` per internal slot, length `1 << depth`.
    splits: Vec<(u32, f64)>,
    /// Leaf values, length `1 << depth`.
    leaves: Vec<f64>,
}

impl FlatEval {
    fn build(nodes: &[Node], depth: usize) -> FlatEval {
        let width = 1usize << depth;
        let mut flat = FlatEval {
            depth,
            splits: vec![(0, f64::INFINITY); width],
            leaves: vec![0.0; width],
        };
        flat.fill(nodes, 0, 1, 0);
        flat
    }

    /// Recursively place `node` at complete-tree slot `pos` on `level`,
    /// padding shallow leaves down to the bottom.
    fn fill(&mut self, nodes: &[Node], node: usize, pos: usize, level: usize) {
        match &nodes[node] {
            Node::Leaf { value } => {
                if level == self.depth {
                    self.leaves[pos - (1 << self.depth)] = *value;
                } else {
                    // Pad: the always-left sentinel split is already in place;
                    // replicate the value across both subtrees so every path
                    // through the padding lands on it.
                    self.fill(nodes, node, 2 * pos, level + 1);
                    self.fill(nodes, node, 2 * pos + 1, level + 1);
                }
            }
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                self.splits[pos] = (*feature as u32, *threshold);
                self.fill(nodes, *left, 2 * pos, level + 1);
                self.fill(nodes, *right, 2 * pos + 1, level + 1);
            }
        }
    }

    // `!(x <= t)` is deliberate, not a readability slip: it must branch right
    // exactly when the node walk's `x <= t` (go left) is false, including for
    // NaN — `x > t` would send NaN rows the other way.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    #[inline]
    fn eval(&self, row: &[f64]) -> f64 {
        let mut idx = 1usize;
        for _ in 0..self.depth {
            let (feature, threshold) = self.splits[idx];
            // Same predicate as the node walk (`<=` goes left), so NaN rows
            // take the same branch in both representations.
            idx = 2 * idx + usize::from(!(row[feature as usize] <= threshold));
        }
        self.leaves[idx - (1 << self.depth)]
    }

    /// Evaluate four rows through one tree with their (independent) descent
    /// chains interleaved: a single descent is a chain of dependent loads, so
    /// overlapping four of them hides most of the latency.  Each row takes
    /// exactly the branches [`FlatEval::eval`] would take.
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN parity; see `eval`
    #[inline]
    fn eval4(&self, r0: &[f64], r1: &[f64], r2: &[f64], r3: &[f64]) -> [f64; 4] {
        let (mut i0, mut i1, mut i2, mut i3) = (1usize, 1usize, 1usize, 1usize);
        for _ in 0..self.depth {
            let (f0, t0) = self.splits[i0];
            let (f1, t1) = self.splits[i1];
            let (f2, t2) = self.splits[i2];
            let (f3, t3) = self.splits[i3];
            i0 = 2 * i0 + usize::from(!(r0[f0 as usize] <= t0));
            i1 = 2 * i1 + usize::from(!(r1[f1 as usize] <= t1));
            i2 = 2 * i2 + usize::from(!(r2[f2 as usize] <= t2));
            i3 = 2 * i3 + usize::from(!(r3[f3 as usize] <= t3));
        }
        let off = 1usize << self.depth;
        [
            self.leaves[i0 - off],
            self.leaves[i1 - off],
            self.leaves[i2 - off],
            self.leaves[i3 - off],
        ]
    }
}

/// A CART regression tree.
#[derive(Debug, Clone)]
pub struct DecisionTreeRegressor {
    config: DecisionTreeConfig,
    nodes: Vec<Node>,
    /// Complete-layout evaluation table for shallow trees (see [`FlatEval`]).
    flat: Option<FlatEval>,
    fitted: bool,
}

impl DecisionTreeRegressor {
    /// Create a tree with an explicit configuration.
    pub fn new(config: DecisionTreeConfig) -> Self {
        DecisionTreeRegressor {
            config,
            nodes: Vec::new(),
            flat: None,
            fitted: false,
        }
    }

    /// The paper's standalone configuration: depth 15, MSLE objective.
    pub fn paper_default() -> Self {
        DecisionTreeRegressor::new(DecisionTreeConfig::default())
    }

    /// A shallow tree fitting the raw target — the base learner shape used inside the
    /// random forest and FastTree ensembles (depth 5).
    pub fn ensemble_base(max_depth: usize, min_samples_leaf: usize, seed: u64) -> Self {
        DecisionTreeRegressor::new(DecisionTreeConfig {
            max_depth,
            min_samples_leaf,
            min_samples_split: min_samples_leaf.max(2) * 2,
            max_features: None,
            seed,
            target_transform: TargetTransform::Identity,
        })
    }

    /// Number of nodes in the fitted tree.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The tree's configuration.
    pub fn config(&self) -> &DecisionTreeConfig {
        &self.config
    }

    /// The fitted node vector in persistable form.  Child fields are indices
    /// into this same vector, exactly as stored, so a tree rebuilt from the
    /// export evaluates bit-identically (see
    /// [`DecisionTreeRegressor::from_parts`]).
    pub fn export_nodes(&self) -> Vec<TreeNode> {
        self.nodes
            .iter()
            .map(|n| match *n {
                Node::Leaf { value } => TreeNode::Leaf { value },
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                },
            })
            .collect()
    }

    /// Rebuild a tree from exported nodes.  The compiled evaluation table is
    /// derived from the nodes exactly as [`fit_raw`](Self::fit_raw) derives
    /// it, so predictions are bit-identical to the exported tree's.
    ///
    /// Child indices are validated (in-range and strictly increasing past the
    /// parent — the invariant `fit_raw`'s construction order guarantees), so
    /// a corrupt export is an error instead of an out-of-bounds panic or an
    /// unbounded recursion.
    pub fn from_parts(
        config: DecisionTreeConfig,
        nodes: Vec<TreeNode>,
        fitted: bool,
    ) -> Result<DecisionTreeRegressor> {
        if fitted && nodes.is_empty() {
            return Err(CleoError::InvalidTrainingData(
                "a fitted tree export must carry at least one node".into(),
            ));
        }
        let nodes: Vec<Node> = nodes
            .into_iter()
            .map(|n| match n {
                TreeNode::Leaf { value } => Node::Leaf { value },
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                },
            })
            .collect();
        for (i, node) in nodes.iter().enumerate() {
            if let Node::Split { left, right, .. } = node {
                if *left <= i || *right <= i || *left >= nodes.len() || *right >= nodes.len() {
                    return Err(CleoError::InvalidTrainingData(format!(
                        "tree export node {i} has invalid child indices {left}/{right}"
                    )));
                }
            }
        }
        let mut tree = DecisionTreeRegressor {
            config,
            nodes,
            flat: None,
            fitted,
        };
        let depth = tree.depth();
        if fitted && depth <= MAX_FLAT_DEPTH {
            tree.flat = Some(FlatEval::build(&tree.nodes, depth));
        }
        Ok(tree)
    }

    /// Depth of the fitted tree.
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], idx: usize) -> usize {
            match &nodes[idx] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_of(&self.nodes, 0)
        }
    }

    /// Fit on already transformed targets (used by the boosting ensemble which manages
    /// the transform itself).
    pub(crate) fn fit_raw(&mut self, data: &Dataset, targets: &[f64]) -> Result<()> {
        if data.is_empty() || targets.len() != data.n_rows() {
            return Err(CleoError::InvalidTrainingData(
                "decision tree requires non-empty, consistent data".into(),
            ));
        }
        self.nodes.clear();
        let indices: Vec<usize> = (0..data.n_rows()).collect();
        let mut rng = DetRng::new(self.config.seed);
        self.build_node(data, targets, &indices, 0, &mut rng);
        let depth = self.depth();
        self.flat = (depth <= MAX_FLAT_DEPTH).then(|| FlatEval::build(&self.nodes, depth));
        self.fitted = true;
        Ok(())
    }

    fn build_node(
        &mut self,
        data: &Dataset,
        targets: &[f64],
        indices: &[usize],
        depth: usize,
        rng: &mut DetRng,
    ) -> usize {
        let mean: f64 = indices.iter().map(|&i| targets[i]).sum::<f64>() / indices.len() as f64;

        let stop = depth >= self.config.max_depth
            || indices.len() < self.config.min_samples_split
            || indices.len() < 2 * self.config.min_samples_leaf;
        if !stop {
            if let Some((feature, threshold)) = self.best_split(data, targets, indices, rng) {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                    .iter()
                    .partition(|&&i| data.row(i)[feature] <= threshold);
                if left_idx.len() >= self.config.min_samples_leaf
                    && right_idx.len() >= self.config.min_samples_leaf
                {
                    // Reserve a slot for this split node, then build children.
                    let my_idx = self.nodes.len();
                    self.nodes.push(Node::Leaf { value: mean }); // placeholder
                    let left = self.build_node(data, targets, &left_idx, depth + 1, rng);
                    let right = self.build_node(data, targets, &right_idx, depth + 1, rng);
                    self.nodes[my_idx] = Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    };
                    return my_idx;
                }
            }
        }
        let my_idx = self.nodes.len();
        self.nodes.push(Node::Leaf { value: mean });
        my_idx
    }

    /// Find the (feature, threshold) minimising children SSE, or `None` if no split
    /// reduces the error.
    fn best_split(
        &self,
        data: &Dataset,
        targets: &[f64],
        indices: &[usize],
        rng: &mut DetRng,
    ) -> Option<(usize, f64)> {
        let n_features = data.n_cols();
        let candidate_features: Vec<usize> = match self.config.max_features {
            Some(k) if k < n_features => rng.sample_indices(n_features, k),
            _ => (0..n_features).collect(),
        };

        let total_sum: f64 = indices.iter().map(|&i| targets[i]).sum();
        let total_sq: f64 = indices.iter().map(|&i| targets[i] * targets[i]).sum();
        let n = indices.len() as f64;
        let parent_sse = total_sq - total_sum * total_sum / n;

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
        for &f in &candidate_features {
            // Sort indices by the feature value and scan split points.
            let mut sorted: Vec<usize> = indices.to_vec();
            sorted.sort_by(|&a, &b| {
                data.row(a)[f]
                    .partial_cmp(&data.row(b)[f])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            for (k, &i) in sorted.iter().enumerate().take(sorted.len() - 1) {
                let t = targets[i];
                left_sum += t;
                left_sq += t * t;
                let next_val = data.row(sorted[k + 1])[f];
                let cur_val = data.row(i)[f];
                if next_val <= cur_val {
                    continue; // ties: can't split between equal values
                }
                let nl = (k + 1) as f64;
                let nr = n - nl;
                if (nl as usize) < self.config.min_samples_leaf
                    || (nr as usize) < self.config.min_samples_leaf
                {
                    continue;
                }
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                let sse =
                    (left_sq - left_sum * left_sum / nl) + (right_sq - right_sum * right_sum / nr);
                if best.is_none_or(|(_, _, b)| sse < b) {
                    best = Some((f, 0.5 * (cur_val + next_val), sse));
                }
            }
        }
        match best {
            Some((f, t, sse)) if sse < parent_sse - 1e-12 => Some((f, t)),
            _ => None,
        }
    }

    /// The complete-layout tables of a shallow fitted tree:
    /// `(depth, splits, leaves)` — both tables have length `1 << depth`.
    /// `None` for trees deeper than the flat-eval cap.
    pub(crate) fn flat_parts(&self) -> Option<FlatParts<'_>> {
        self.flat
            .as_ref()
            .map(|f| (f.depth, f.splits.as_slice(), f.leaves.as_slice()))
    }

    /// Predict four rows in model space with interleaved descents (the batched
    /// ensemble path); identical per-row results to [`Self::predict_raw`].
    #[inline]
    pub(crate) fn predict_raw4(&self, r0: &[f64], r1: &[f64], r2: &[f64], r3: &[f64]) -> [f64; 4] {
        if let (Some(flat), false) = (&self.flat, self.nodes.is_empty()) {
            flat.eval4(r0, r1, r2, r3)
        } else {
            [
                self.predict_raw(r0),
                self.predict_raw(r1),
                self.predict_raw(r2),
                self.predict_raw(r3),
            ]
        }
    }

    /// Predict in model (possibly log) space.
    pub(crate) fn predict_raw(&self, row: &[f64]) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        if let Some(flat) = &self.flat {
            return flat.eval(row);
        }
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

impl Regressor for DecisionTreeRegressor {
    fn fit(&mut self, data: &Dataset) -> Result<()> {
        let targets = self.config.target_transform.forward_all(data.targets());
        self.fit_raw(data, &targets)
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        if !self.fitted {
            return 0.0;
        }
        self.config.target_transform.inverse(self.predict_raw(row))
    }

    fn predict_batch_into(&self, rows: &crate::matrix::FeatureMatrix, out: &mut Vec<f64>) {
        if !self.fitted {
            out.extend(rows.rows().map(|_| 0.0));
            return;
        }
        // Strided tree walks over the flat buffer: the node table is resolved once
        // and each row's descent reads straight out of the contiguous matrix.
        out.extend(
            rows.rows()
                .map(|row| self.config.target_transform.inverse(self.predict_raw(row))),
        );
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }

    fn name(&self) -> &'static str {
        "Decision Tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cleo_common::rng::DetRng;
    use cleo_common::stats;

    fn step_dataset() -> Dataset {
        // y depends on a threshold of x0, ignoring x1.
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64, (i % 5) as f64]).collect();
        let targets: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] < 30.0 { 10.0 } else { 100.0 })
            .collect();
        Dataset::from_rows(vec!["x0".into(), "x1".into()], rows, targets).unwrap()
    }

    #[test]
    fn learns_step_function_exactly() {
        let ds = step_dataset();
        let mut tree = DecisionTreeRegressor::paper_default();
        tree.fit(&ds).unwrap();
        assert!((tree.predict_row(&[5.0, 0.0]) - 10.0).abs() < 0.5);
        assert!((tree.predict_row(&[45.0, 0.0]) - 100.0).abs() < 1.0);
        assert!(tree.depth() >= 1);
    }

    #[test]
    fn max_depth_zero_gives_single_leaf_mean() {
        let ds = step_dataset();
        let cfg = DecisionTreeConfig {
            max_depth: 0,
            target_transform: TargetTransform::Identity,
            ..Default::default()
        };
        let mut tree = DecisionTreeRegressor::new(cfg);
        tree.fit(&ds).unwrap();
        assert_eq!(tree.n_nodes(), 1);
        let mean = stats::mean(ds.targets());
        assert!((tree.predict_row(&[0.0, 0.0]) - mean).abs() < 1e-9);
    }

    #[test]
    fn min_samples_leaf_limits_granularity() {
        let ds = step_dataset();
        let cfg = DecisionTreeConfig {
            min_samples_leaf: 25,
            target_transform: TargetTransform::Identity,
            ..Default::default()
        };
        let mut tree = DecisionTreeRegressor::new(cfg);
        tree.fit(&ds).unwrap();
        // With 60 samples and min leaf 25 at most one split is possible.
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn fits_nonlinear_interaction_better_than_linear_baseline() {
        let mut rng = DetRng::new(7);
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        for _ in 0..300 {
            let a = rng.uniform(0.0, 10.0);
            let b = rng.uniform(0.0, 10.0);
            rows.push(vec![a, b]);
            targets.push(if a > 5.0 && b > 5.0 { 100.0 } else { 1.0 });
        }
        let ds = Dataset::from_rows(vec!["a".into(), "b".into()], rows, targets).unwrap();
        let mut tree = DecisionTreeRegressor::paper_default();
        tree.fit(&ds).unwrap();
        let preds = tree.predict(&ds);
        assert!(stats::pearson(&preds, ds.targets()) > 0.95);
    }

    #[test]
    fn constant_target_gives_single_leaf() {
        let ds = Dataset::from_rows(
            vec!["x".into()],
            vec![vec![1.0], vec![2.0], vec![3.0]],
            vec![7.0, 7.0, 7.0],
        )
        .unwrap();
        let mut tree = DecisionTreeRegressor::paper_default();
        tree.fit(&ds).unwrap();
        assert_eq!(tree.n_nodes(), 1);
        assert!((tree.predict_row(&[10.0]) - 7.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_empty_data() {
        let ds = Dataset::new(vec!["x".into()]);
        let mut tree = DecisionTreeRegressor::paper_default();
        assert!(tree.fit(&ds).is_err());
        assert_eq!(tree.predict_row(&[1.0]), 0.0);
    }

    #[test]
    fn feature_subsampling_still_produces_valid_tree() {
        let ds = step_dataset();
        let cfg = DecisionTreeConfig {
            max_features: Some(1),
            seed: 3,
            target_transform: TargetTransform::Identity,
            ..Default::default()
        };
        let mut tree = DecisionTreeRegressor::new(cfg);
        tree.fit(&ds).unwrap();
        let preds = tree.predict(&ds);
        assert_eq!(preds.len(), ds.n_rows());
        assert!(preds.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn handles_duplicate_feature_values() {
        // All x identical → no valid split → single leaf.
        let ds = Dataset::from_rows(
            vec!["x".into()],
            vec![vec![5.0]; 10],
            (0..10).map(|i| i as f64).collect(),
        )
        .unwrap();
        let mut tree = DecisionTreeRegressor::paper_default();
        tree.fit(&ds).unwrap();
        assert_eq!(tree.n_nodes(), 1);
    }
}
