//! Linear regression trained by (sub)gradient descent with a configurable loss.
//!
//! The coordinate-descent elastic net in [`crate::elastic_net`] only optimises squared
//! error (optionally in log space).  Table 1 of the paper compares four different loss
//! functions on the same elastic-net model; to reproduce that comparison we need a
//! linear learner that can optimise MAE, median-AE, MSE, and MSLE directly.  This
//! module provides exactly that: full-batch (sub)gradient descent over standardised
//! features with the elastic-net penalty.

use crate::dataset::Dataset;
use crate::loss::{expm1_clamped, log1p_clamped, Loss};
use crate::model::Regressor;
use crate::scaler::StandardScaler;
use cleo_common::{CleoError, Result};

/// Configuration for [`LinearGd`].
#[derive(Debug, Clone, PartialEq)]
pub struct LinearGdConfig {
    /// Which loss to optimise.
    pub loss: Loss,
    /// Elastic-net regularisation strength.
    pub alpha: f64,
    /// L1/L2 mix (1.0 = pure lasso).
    pub l1_ratio: f64,
    /// Learning rate.
    pub learning_rate: f64,
    /// Number of full-batch epochs.
    pub epochs: usize,
}

impl Default for LinearGdConfig {
    fn default() -> Self {
        LinearGdConfig {
            loss: Loss::MeanSquaredLogError,
            alpha: 0.01,
            l1_ratio: 0.5,
            learning_rate: 0.05,
            epochs: 600,
        }
    }
}

/// Linear model `ŷ = w·x + b` trained by full-batch subgradient descent on the chosen
/// loss.  For [`Loss::MeanSquaredLogError`] the linear part predicts `log1p(y)` and the
/// output is exponentiated back, exactly like the elastic net's log-target mode.
#[derive(Debug, Clone)]
pub struct LinearGd {
    config: LinearGdConfig,
    scaler: Option<StandardScaler>,
    weights: Vec<f64>,
    intercept: f64,
    fitted: bool,
}

impl LinearGd {
    /// Create a learner with the given configuration.
    pub fn new(config: LinearGdConfig) -> Self {
        LinearGd {
            config,
            scaler: None,
            weights: Vec::new(),
            intercept: 0.0,
            fitted: false,
        }
    }

    /// Create a learner optimising a specific loss with otherwise default settings.
    pub fn with_loss(loss: Loss) -> Self {
        LinearGd::new(LinearGdConfig {
            loss,
            ..LinearGdConfig::default()
        })
    }

    /// The loss this learner optimises.
    pub fn loss(&self) -> Loss {
        self.config.loss
    }

    fn uses_log_space(&self) -> bool {
        self.config.loss == Loss::MeanSquaredLogError
    }

    fn linear(&self, std_row: &[f64]) -> f64 {
        std_row
            .iter()
            .zip(self.weights.iter())
            .map(|(x, w)| x * w)
            .sum::<f64>()
            + self.intercept
    }
}

impl Regressor for LinearGd {
    fn fit(&mut self, data: &Dataset) -> Result<()> {
        if data.is_empty() {
            return Err(CleoError::InvalidTrainingData(
                "linear-gd requires at least one sample".into(),
            ));
        }
        let n = data.n_rows();
        let d = data.n_cols();
        let scaler = StandardScaler::fit(data);
        let std_data = scaler.transform(data);

        // Targets in model space.
        let y: Vec<f64> = if self.uses_log_space() {
            data.targets().iter().map(|&t| log1p_clamped(t)).collect()
        } else {
            data.targets().to_vec()
        };

        let mut w = vec![0.0; d];
        let mut b = y.iter().sum::<f64>() / n as f64;
        let lr = self.config.learning_rate;
        let l1 = self.config.alpha * self.config.l1_ratio;
        let l2 = self.config.alpha * (1.0 - self.config.l1_ratio);
        let nf = n as f64;

        for _ in 0..self.config.epochs {
            // Per-sample pseudo-residuals dL/d(pred) in model space.
            let preds: Vec<f64> = (0..n)
                .map(|i| {
                    std_data
                        .row(i)
                        .iter()
                        .zip(w.iter())
                        .map(|(x, wj)| x * wj)
                        .sum::<f64>()
                        + b
                })
                .collect();
            let grads: Vec<f64> = match self.config.loss {
                Loss::MeanSquaredError | Loss::MeanSquaredLogError => preds
                    .iter()
                    .zip(y.iter())
                    .map(|(p, t)| 2.0 * (p - t) / nf)
                    .collect(),
                Loss::MeanAbsoluteError => preds
                    .iter()
                    .zip(y.iter())
                    .map(|(p, t)| (p - t).signum() / nf)
                    .collect(),
                Loss::MedianAbsoluteError => {
                    // Subgradient of the median of |p - t|: only the sample(s) at the
                    // current median contribute.  This is faithful to the objective and
                    // (as the paper observes) makes for a poor training signal.
                    let mut abs: Vec<(usize, f64)> = preds
                        .iter()
                        .zip(y.iter())
                        .enumerate()
                        .map(|(i, (p, t))| (i, (p - t).abs()))
                        .collect();
                    abs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
                    let med_idx = abs[abs.len() / 2].0;
                    let mut g = vec![0.0; n];
                    g[med_idx] = (preds[med_idx] - y[med_idx]).signum();
                    g
                }
            };

            // Gradient step on weights and intercept, plus elastic-net subgradient.
            let mut db = 0.0;
            let mut dw = vec![0.0; d];
            for (i, &gi) in grads.iter().enumerate() {
                if gi == 0.0 {
                    continue;
                }
                db += gi;
                for (j, &x) in std_data.row(i).iter().enumerate() {
                    dw[j] += gi * x;
                }
            }
            b -= lr * db;
            for j in 0..d {
                let reg = l2 * w[j] + l1 * w[j].signum();
                w[j] -= lr * (dw[j] + reg);
            }
        }

        self.scaler = Some(scaler);
        self.weights = w;
        self.intercept = b;
        self.fitted = true;
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        if !self.fitted {
            return 0.0;
        }
        let scaler = self.scaler.as_ref().expect("fitted model has a scaler");
        let std_row = scaler.transform_row(row);
        let lin = self.linear(&std_row);
        if self.uses_log_space() {
            expm1_clamped(lin)
        } else {
            lin
        }
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }

    fn name(&self) -> &'static str {
        "Linear (gradient descent)"
    }

    fn feature_weights(&self) -> Option<Vec<f64>> {
        if !self.fitted {
            return None;
        }
        let scaler = self.scaler.as_ref()?;
        let (raw, _) = scaler.unscale_weights(&self.weights, self.intercept);
        Some(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cleo_common::rng::DetRng;
    use cleo_common::stats;

    fn noisy_runtime_dataset(seed: u64, n: usize) -> Dataset {
        // Simulated operator runtimes: multiplicative structure + occasional outliers,
        // the regime where MSLE shines over MSE/MAE.
        let mut rng = DetRng::new(seed);
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        for _ in 0..n {
            let card = rng.uniform(1e3, 1e6);
            let rowlen = rng.uniform(10.0, 200.0);
            let parts = rng.uniform(1.0, 256.0);
            let base = 1e-4 * card * rowlen.sqrt() / parts + 0.5 * parts;
            let noise = rng.lognormal_noise(0.2);
            let outlier = if rng.chance(0.03) {
                rng.uniform(5.0, 20.0)
            } else {
                1.0
            };
            rows.push(vec![card, rowlen, parts, card / parts]);
            targets.push(base * noise * outlier);
        }
        Dataset::from_rows(
            vec!["C".into(), "L".into(), "P".into(), "C/P".into()],
            rows,
            targets,
        )
        .unwrap()
    }

    #[test]
    fn msle_fits_reasonably() {
        let ds = noisy_runtime_dataset(1, 200);
        let mut m = LinearGd::with_loss(Loss::MeanSquaredLogError);
        m.fit(&ds).unwrap();
        let preds = m.predict(&ds);
        let med = stats::median_error_pct(&preds, ds.targets());
        assert!(med < 80.0, "median error {med}%");
        assert!(preds.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn loss_ranking_matches_paper_direction() {
        // Table 1: MSLE < MSE < MAE < MedAE in median relative error on runtime-like data.
        let train = noisy_runtime_dataset(2, 300);
        let test = noisy_runtime_dataset(3, 150);
        let mut med_errors = std::collections::HashMap::new();
        for loss in [
            Loss::MedianAbsoluteError,
            Loss::MeanAbsoluteError,
            Loss::MeanSquaredError,
            Loss::MeanSquaredLogError,
        ] {
            let mut m = LinearGd::with_loss(loss);
            m.fit(&train).unwrap();
            let preds = m.predict(&test);
            med_errors.insert(loss, stats::median_error_pct(&preds, test.targets()));
        }
        let msle = med_errors[&Loss::MeanSquaredLogError];
        let medae = med_errors[&Loss::MedianAbsoluteError];
        assert!(
            msle < medae,
            "MSLE ({msle:.1}%) should beat MedAE ({medae:.1}%)"
        );
        assert!(msle <= med_errors[&Loss::MeanAbsoluteError] + 15.0);
    }

    #[test]
    fn empty_data_is_rejected() {
        let ds = Dataset::new(vec!["x".into()]);
        let mut m = LinearGd::with_loss(Loss::MeanSquaredError);
        assert!(m.fit(&ds).is_err());
        assert_eq!(m.predict_row(&[1.0]), 0.0);
    }

    #[test]
    fn feature_weights_in_raw_space() {
        let ds = noisy_runtime_dataset(4, 100);
        let mut m = LinearGd::with_loss(Loss::MeanSquaredError);
        assert!(m.feature_weights().is_none());
        m.fit(&ds).unwrap();
        assert_eq!(m.feature_weights().unwrap().len(), 4);
    }
}
