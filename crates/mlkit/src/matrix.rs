//! Flat, reusable feature matrices for the inference hot path.
//!
//! The optimizer costs one operator at tens of candidate partition counts per
//! sweep, and every sweep used to materialise a fresh `Vec<Vec<f64>>` (one heap
//! allocation per candidate row, plus a `Vec<&[f64]>` of references to feed the
//! batched predictors).  A [`FeatureMatrix`] is a single contiguous row-major
//! `Vec<f64>` with a fixed stride: rows are written in place with
//! [`FeatureMatrix::push_row_with`], the buffer is retained across
//! [`FeatureMatrix::clear`] calls, and in steady state a sweep performs **zero**
//! per-candidate heap allocations.

/// A dense row-major matrix of feature rows: one flat buffer plus a stride.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeatureMatrix {
    n_cols: usize,
    values: Vec<f64>,
}

impl FeatureMatrix {
    /// Create an empty matrix with `n_cols` columns per row.
    pub fn new(n_cols: usize) -> Self {
        FeatureMatrix {
            n_cols,
            values: Vec::new(),
        }
    }

    /// Create an empty matrix with capacity reserved for `rows` rows.
    pub fn with_capacity(n_cols: usize, rows: usize) -> Self {
        FeatureMatrix {
            n_cols,
            values: Vec::with_capacity(n_cols * rows),
        }
    }

    /// Build a matrix by copying a slice of owned rows (convenience for tests and
    /// one-shot callers; the hot path uses [`FeatureMatrix::push_row_with`]).
    ///
    /// Panics if any row's length differs from the first row's.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n_cols = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut m = FeatureMatrix::with_capacity(n_cols, rows.len());
        for row in rows {
            m.push_row(row);
        }
        m
    }

    /// Number of rows currently stored.
    pub fn n_rows(&self) -> usize {
        self.values.len().checked_div(self.n_cols).unwrap_or(0)
    }

    /// Number of columns (the row stride).
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Drop all rows, keeping the allocated buffer for reuse.
    pub fn clear(&mut self) {
        self.values.clear();
    }

    /// Drop all rows and change the stride (keeps the buffer; used when one scratch
    /// matrix serves feature spaces of different widths).
    pub fn reset(&mut self, n_cols: usize) {
        self.values.clear();
        self.n_cols = n_cols;
    }

    /// Append one row by copying a slice.
    ///
    /// Panics if `row.len() != n_cols`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.n_cols, "row width mismatch");
        self.values.extend_from_slice(row);
    }

    /// Append one zero-initialised row and let `fill` write it in place — the
    /// allocation-free way to extract features straight into the matrix.
    pub fn push_row_with(&mut self, fill: impl FnOnce(&mut [f64])) {
        let start = self.values.len();
        self.values.resize(start + self.n_cols, 0.0);
        fill(&mut self.values[start..]);
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.values[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// `count` consecutive rows starting at `i` as one contiguous row-major
    /// slice (stride `n_cols`) — what the SIMD lane-block transpose consumes.
    pub fn rows_flat(&self, i: usize, count: usize) -> &[f64] {
        &self.values[i * self.n_cols..(i + count) * self.n_cols]
    }

    /// Iterate over all rows as slices.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f64]> {
        self.values.chunks_exact(self.n_cols.max(1))
    }

    /// The flat row-major buffer.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_rows() {
        let mut m = FeatureMatrix::new(3);
        assert!(m.is_empty());
        m.push_row(&[1.0, 2.0, 3.0]);
        m.push_row_with(|dst| {
            dst[0] = 4.0;
            dst[1] = 5.0;
            dst[2] = 6.0;
        });
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_cols(), 3);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        let rows: Vec<&[f64]> = m.rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], &[4.0, 5.0, 6.0]);
        assert_eq!(m.values().len(), 6);
    }

    #[test]
    fn clear_retains_capacity_and_reset_changes_stride() {
        let mut m = FeatureMatrix::with_capacity(2, 8);
        for i in 0..8 {
            m.push_row(&[i as f64, 0.0]);
        }
        let cap = m.values.capacity();
        m.clear();
        assert_eq!(m.n_rows(), 0);
        assert_eq!(m.values.capacity(), cap, "clear must keep the buffer");
        m.reset(4);
        assert_eq!(m.n_cols(), 4);
        m.push_row(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.n_rows(), 1);
    }

    #[test]
    fn push_row_with_zero_initialises() {
        let mut m = FeatureMatrix::new(2);
        m.push_row_with(|dst| {
            assert_eq!(dst, &[0.0, 0.0]);
            dst[1] = 9.0;
        });
        assert_eq!(m.row(0), &[0.0, 9.0]);
    }

    #[test]
    fn from_rows_round_trips() {
        let m = FeatureMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(FeatureMatrix::from_rows(&[]).n_rows(), 0);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn push_row_rejects_wrong_width() {
        let mut m = FeatureMatrix::new(3);
        m.push_row(&[1.0]);
    }
}
