//! The common regressor interface and the registry of model families.
//!
//! Every learner in this crate implements [`Regressor`], so the Cleo model store can
//! hold heterogeneous models behind `Box<dyn Regressor>` and the cross-validation
//! tables (Tables 4 and 6, Figure 11) can iterate over [`RegressorKind::all`].

use crate::dataset::Dataset;
use crate::decision_tree::DecisionTreeRegressor;
use crate::elastic_net::ElasticNet;
use crate::gbt::FastTreeRegressor;
use crate::matrix::FeatureMatrix;
use crate::mlp::MlpRegressor;
use crate::random_forest::RandomForestRegressor;
use cleo_common::Result;

/// A trainable regression model mapping a feature row to a non-negative cost.
///
/// The trait is `Send + Sync` so model stores can train their thousands of
/// per-signature models across threads and share trained models freely.
pub trait Regressor: Send + Sync {
    /// Fit the model on a dataset. Re-fitting replaces the previous state.
    fn fit(&mut self, data: &Dataset) -> Result<()>;

    /// Predict the target for one feature row. Panics or returns a default if the
    /// model has not been fitted; use [`Regressor::is_fitted`] to check.
    fn predict_row(&self, row: &[f64]) -> f64;

    /// Predict a batch of feature rows in one call over a flat row-stride matrix.
    ///
    /// This is the API the optimizer's per-stage costing uses: one operator is
    /// evaluated at many candidate partition counts against the *same* model, so
    /// batching amortises the model lookup and keeps the per-candidate work tight.
    /// The rows come in as a contiguous [`FeatureMatrix`] (no per-row allocations,
    /// no slice-of-slices indirection).  The default maps
    /// [`Regressor::predict_row`]; implementations may override
    /// [`Regressor::predict_batch_into`] with a genuinely strided path, but must
    /// produce bitwise the same values as the row-by-row loop.
    fn predict_batch(&self, rows: &FeatureMatrix) -> Vec<f64> {
        let mut out = Vec::with_capacity(rows.n_rows());
        self.predict_batch_into(rows, &mut out);
        out
    }

    /// Allocation-free batched prediction: append one prediction per row of
    /// `rows` onto `out` (which callers reuse across sweeps).
    fn predict_batch_into(&self, rows: &FeatureMatrix, out: &mut Vec<f64>) {
        out.extend(rows.rows().map(|row| self.predict_row(row)));
    }

    /// Predict every row of a dataset.
    fn predict(&self, data: &Dataset) -> Vec<f64> {
        (0..data.n_rows())
            .map(|i| self.predict_row(data.row(i)))
            .collect()
    }

    /// True once `fit` has succeeded.
    fn is_fitted(&self) -> bool;

    /// Short human-readable name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// For linear models: the learned per-feature weights in raw feature space.
    /// Returns `None` for non-linear models.
    fn feature_weights(&self) -> Option<Vec<f64>> {
        None
    }
}

/// The five model families evaluated in the paper (Section 3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegressorKind {
    /// L1+L2-regularised linear regression (the paper's choice for individual models).
    ElasticNet,
    /// CART regression tree (depth 15 in the paper).
    DecisionTree,
    /// Random forest (20 trees, depth 5).
    RandomForest,
    /// FastTree / MART gradient-boosted trees (20 trees, depth 5, subsample 0.9) —
    /// the paper's choice for the combined meta-model.
    FastTree,
    /// 3-layer multilayer perceptron (hidden size 30, ReLU, Adam, L2 = 0.005).
    Mlp,
}

impl RegressorKind {
    /// All five families, in the order the paper's tables list them.
    pub fn all() -> [RegressorKind; 5] {
        [
            RegressorKind::Mlp,
            RegressorKind::DecisionTree,
            RegressorKind::FastTree,
            RegressorKind::RandomForest,
            RegressorKind::ElasticNet,
        ]
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            RegressorKind::ElasticNet => "Elastic net",
            RegressorKind::DecisionTree => "Decision Tree",
            RegressorKind::RandomForest => "Random Forest",
            RegressorKind::FastTree => "FastTree Regression",
            RegressorKind::Mlp => "Neural Network",
        }
    }

    /// Construct a model of this family with the paper's hyper-parameters.
    /// `seed` controls any internal randomness (subsampling, initialisation).
    pub fn build(&self, seed: u64) -> Box<dyn Regressor> {
        match self {
            RegressorKind::ElasticNet => Box::new(ElasticNet::paper_default()),
            RegressorKind::DecisionTree => Box::new(DecisionTreeRegressor::paper_default()),
            RegressorKind::RandomForest => Box::new(RandomForestRegressor::paper_default(seed)),
            RegressorKind::FastTree => Box::new(FastTreeRegressor::paper_default(seed)),
            RegressorKind::Mlp => Box::new(MlpRegressor::paper_default(seed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dataset() -> Dataset {
        // y = 3*x0 + 0.5*x1
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![i as f64, (i * 2 % 7) as f64])
            .collect();
        let targets: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] + 0.5 * r[1]).collect();
        Dataset::from_rows(vec!["x0".into(), "x1".into()], rows, targets).unwrap()
    }

    #[test]
    fn registry_builds_all_families() {
        let ds = toy_dataset();
        for kind in RegressorKind::all() {
            let mut model = kind.build(7);
            assert!(!model.is_fitted(), "{} fitted before fit()", kind.name());
            model.fit(&ds).unwrap();
            assert!(model.is_fitted());
            let preds = model.predict(&ds);
            assert_eq!(preds.len(), ds.n_rows());
            assert!(preds.iter().all(|p| p.is_finite()), "{}", kind.name());
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> =
            RegressorKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 5);
    }
}
