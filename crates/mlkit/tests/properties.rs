//! Property-style tests for the ML toolkit: every learner must stay finite,
//! non-negative (under the log-target transform), and deterministic for a fixed seed,
//! over arbitrary well-formed training data.
//!
//! Inputs are generated from the workspace's own [`DetRng`] (the build is
//! offline and dependency-free, so there is no proptest).

use cleo_common::rng::DetRng;
use cleo_mlkit::loss::TargetTransform;
use cleo_mlkit::model::RegressorKind;
use cleo_mlkit::{Dataset, Loss};

/// A small regression dataset with positive targets (runtimes).
fn random_dataset(rng: &mut DetRng) -> Dataset {
    let n_cols = rng.index(3) + 2; // 2..5
    let n_rows = rng.index(32) + 8; // 8..40
    let rows: Vec<Vec<f64>> = (0..n_rows)
        .map(|_| (0..n_cols).map(|_| rng.uniform(0.0, 1e6)).collect())
        .collect();
    let targets: Vec<f64> = (0..n_rows).map(|_| rng.uniform(0.01, 1e5)).collect();
    let names = (0..n_cols).map(|i| format!("f{i}")).collect();
    Dataset::from_rows(names, rows, targets).expect("well-formed dataset")
}

#[test]
fn all_learners_produce_finite_nonnegative_predictions() {
    let mut rng = DetRng::new(201);
    for _ in 0..16 {
        let ds = random_dataset(&mut rng);
        for kind in RegressorKind::all() {
            let mut model = kind.build(7);
            model.fit(&ds).expect("fit succeeds on well-formed data");
            for i in 0..ds.n_rows() {
                let p = model.predict_row(ds.row(i));
                assert!(
                    p.is_finite(),
                    "{} produced non-finite prediction",
                    kind.name()
                );
                assert!(p >= 0.0, "{} produced negative prediction {p}", kind.name());
            }
        }
    }
}

#[test]
fn learners_are_deterministic_for_a_seed() {
    let mut rng = DetRng::new(202);
    for _ in 0..8 {
        let ds = random_dataset(&mut rng);
        for kind in [
            RegressorKind::RandomForest,
            RegressorKind::FastTree,
            RegressorKind::Mlp,
        ] {
            let mut a = kind.build(13);
            let mut b = kind.build(13);
            a.fit(&ds).unwrap();
            b.fit(&ds).unwrap();
            for i in 0..ds.n_rows().min(10) {
                assert_eq!(
                    a.predict_row(ds.row(i)).to_bits(),
                    b.predict_row(ds.row(i)).to_bits()
                );
            }
        }
    }
}

#[test]
fn batched_prediction_matches_row_by_row() {
    let mut rng = DetRng::new(203);
    for _ in 0..8 {
        let ds = random_dataset(&mut rng);
        for kind in RegressorKind::all() {
            let mut model = kind.build(11);
            model.fit(&ds).unwrap();
            let mut rows = cleo_mlkit::FeatureMatrix::new(ds.n_cols());
            for i in 0..ds.n_rows() {
                rows.push_row(ds.row(i));
            }
            let batched = model.predict_batch(&rows);
            assert_eq!(batched.len(), ds.n_rows());
            for (i, b) in batched.iter().enumerate() {
                assert_eq!(
                    b.to_bits(),
                    model.predict_row(ds.row(i)).to_bits(),
                    "{} batch/row mismatch at {i}",
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn losses_are_nonnegative_and_zero_for_perfect_predictions() {
    let mut rng = DetRng::new(204);
    for _ in 0..32 {
        let len = rng.index(49) + 1;
        let ys: Vec<f64> = (0..len).map(|_| rng.uniform(0.0, 1e6)).collect();
        for loss in [
            Loss::MedianAbsoluteError,
            Loss::MeanAbsoluteError,
            Loss::MeanSquaredError,
            Loss::MeanSquaredLogError,
        ] {
            assert!(loss.evaluate(&ys, &ys).abs() < 1e-9);
            let shifted: Vec<f64> = ys.iter().map(|y| y + 1.0).collect();
            assert!(loss.evaluate(&shifted, &ys) >= 0.0);
        }
    }
}

#[test]
fn log_target_transform_round_trips() {
    let mut rng = DetRng::new(205);
    for _ in 0..256 {
        let y = rng.uniform(0.0, 1e12);
        let t = TargetTransform::Log1p;
        let back = t.inverse(t.forward(y));
        assert!((back - y).abs() <= 1e-6 * (1.0 + y));
    }
}
