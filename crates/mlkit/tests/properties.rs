//! Property-based tests for the ML toolkit: every learner must stay finite,
//! non-negative (under the log-target transform), and deterministic for a fixed seed,
//! over arbitrary well-formed training data.

use cleo_mlkit::loss::TargetTransform;
use cleo_mlkit::model::{Regressor, RegressorKind};
use cleo_mlkit::{Dataset, Loss};
use proptest::prelude::*;

/// Strategy: a small regression dataset with positive targets (runtimes).
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (2usize..5, 8usize..40).prop_flat_map(|(n_cols, n_rows)| {
        let row = prop::collection::vec(0.0f64..1e6, n_cols);
        let rows = prop::collection::vec(row, n_rows);
        let targets = prop::collection::vec(0.01f64..1e5, n_rows);
        (rows, targets).prop_map(move |(rows, targets)| {
            let names = (0..n_cols).map(|i| format!("f{i}")).collect();
            Dataset::from_rows(names, rows, targets).expect("well-formed dataset")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn all_learners_produce_finite_nonnegative_predictions(ds in dataset_strategy()) {
        for kind in RegressorKind::all() {
            let mut model = kind.build(7);
            model.fit(&ds).expect("fit succeeds on well-formed data");
            for i in 0..ds.n_rows() {
                let p = model.predict_row(ds.row(i));
                prop_assert!(p.is_finite(), "{} produced non-finite prediction", kind.name());
                prop_assert!(p >= 0.0, "{} produced negative prediction {p}", kind.name());
            }
        }
    }

    #[test]
    fn learners_are_deterministic_for_a_seed(ds in dataset_strategy()) {
        for kind in [RegressorKind::RandomForest, RegressorKind::FastTree, RegressorKind::Mlp] {
            let mut a = kind.build(13);
            let mut b = kind.build(13);
            a.fit(&ds).unwrap();
            b.fit(&ds).unwrap();
            for i in 0..ds.n_rows().min(10) {
                prop_assert_eq!(a.predict_row(ds.row(i)).to_bits(), b.predict_row(ds.row(i)).to_bits());
            }
        }
    }

    #[test]
    fn losses_are_nonnegative_and_zero_for_perfect_predictions(ys in prop::collection::vec(0.0f64..1e6, 1..50)) {
        for loss in [
            Loss::MedianAbsoluteError,
            Loss::MeanAbsoluteError,
            Loss::MeanSquaredError,
            Loss::MeanSquaredLogError,
        ] {
            prop_assert!(loss.evaluate(&ys, &ys).abs() < 1e-9);
            let shifted: Vec<f64> = ys.iter().map(|y| y + 1.0).collect();
            prop_assert!(loss.evaluate(&shifted, &ys) >= 0.0);
        }
    }

    #[test]
    fn log_target_transform_round_trips(y in 0.0f64..1e12) {
        let t = TargetTransform::Log1p;
        let back = t.inverse(t.forward(y));
        prop_assert!((back - y).abs() <= 1e-6 * (1.0 + y));
    }
}
