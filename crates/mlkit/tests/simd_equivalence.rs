//! SIMD-vs-scalar exact-equality property tests.
//!
//! The lane-blocked kernels in `cleo_mlkit::simd` promise **bitwise** identity
//! with the scalar reference path (`predict_row` / per-row transforms): lanes
//! map to rows, every per-row accumulation keeps the scalar summation order,
//! and no arm may contract multiply-add into FMA.  These tests pin that
//! contract across ragged row counts (1..=67 exercises every combination of
//! 8-row lane blocks, 4-row quads, and scalar tails) and across every
//! instruction-set arm the host CPU supports.

use cleo_common::rng::DetRng;
use cleo_mlkit::gbt::FastTreeConfig;
use cleo_mlkit::loss::TargetTransform;
use cleo_mlkit::model::Regressor;
use cleo_mlkit::scaler::StandardScaler;
use cleo_mlkit::simd::{self, Isa, LANES};
use cleo_mlkit::{Dataset, ElasticNet, FastTreeRegressor, FeatureMatrix};

fn random_dataset(rng: &mut DetRng, n_rows: usize, n_cols: usize) -> Dataset {
    let rows: Vec<Vec<f64>> = (0..n_rows)
        .map(|_| (0..n_cols).map(|_| rng.uniform(0.0, 1e6)).collect())
        .collect();
    let targets: Vec<f64> = (0..n_rows).map(|_| rng.uniform(0.01, 1e5)).collect();
    let names = (0..n_cols).map(|i| format!("f{i}")).collect();
    Dataset::from_rows(names, rows, targets).unwrap()
}

fn random_matrix(rng: &mut DetRng, n_rows: usize, n_cols: usize) -> FeatureMatrix {
    let mut m = FeatureMatrix::with_capacity(n_cols, n_rows);
    for _ in 0..n_rows {
        m.push_row_with(|dst| {
            for v in dst.iter_mut() {
                *v = rng.uniform(0.0, 1e6);
            }
        });
    }
    m
}

/// Every arm the host CPU can actually run.
fn supported_arms() -> Vec<Isa> {
    Isa::ALL.into_iter().filter(|isa| isa.supported()).collect()
}

#[test]
fn elastic_net_batch_is_bit_identical_across_ragged_row_counts() {
    let mut rng = DetRng::new(9001);
    let train = random_dataset(&mut rng, 48, 13);
    let mut model = ElasticNet::paper_default();
    model.fit(&train).unwrap();
    for n_rows in 1..=67 {
        let rows = random_matrix(&mut rng, n_rows, 13);
        let mut batch = Vec::new();
        model.predict_batch_into(&rows, &mut batch);
        assert_eq!(batch.len(), n_rows);
        for (i, &got) in batch.iter().enumerate() {
            let want = model.predict_row(rows.row(i));
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "elastic net row {i} of {n_rows} diverged: {got} vs {want}"
            );
        }
    }
}

#[test]
fn elastic_net_clamped_batch_fuses_the_same_epilogue() {
    let mut rng = DetRng::new(9002);
    let train = random_dataset(&mut rng, 40, 9);
    let mut model = ElasticNet::paper_default();
    model.fit(&train).unwrap();
    let (floor, ceiling) = (10.0, 5e4);
    for n_rows in [1, 7, 8, 9, 31, 64, 67] {
        let rows = random_matrix(&mut rng, n_rows, 9);
        let mut fused = Vec::new();
        model.predict_batch_clamped_into(&rows, &mut fused, floor, ceiling);
        for (i, &got) in fused.iter().enumerate() {
            let want = model.predict_row(rows.row(i)).clamp(floor, ceiling);
            assert_eq!(got.to_bits(), want.to_bits(), "row {i} of {n_rows}");
        }
    }
}

#[test]
fn fasttree_depth3_batch_is_bit_identical_across_ragged_row_counts() {
    let mut rng = DetRng::new(9003);
    let train = random_dataset(&mut rng, 64, 11);
    // The combined meta-model's shape: depth 3, identity transform — the
    // lane-blocked oblivious kernel handles whole 8-row blocks.
    let mut model = FastTreeRegressor::new(FastTreeConfig {
        n_trees: 50,
        max_depth: 3,
        target_transform: TargetTransform::Identity,
        ..FastTreeConfig::default()
    });
    model.fit(&train).unwrap();
    for n_rows in 1..=67 {
        let rows = random_matrix(&mut rng, n_rows, 11);
        let mut batch = Vec::new();
        model.predict_batch_into(&rows, &mut batch);
        for (i, &got) in batch.iter().enumerate() {
            let want = model.predict_row(rows.row(i));
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "fasttree row {i} of {n_rows} diverged: {got} vs {want}"
            );
        }
    }
}

#[test]
fn fasttree_depth5_batch_stays_bit_identical() {
    // Depth-5 ensembles take the W32 quad path (no lane blocks); the batch
    // contract must hold there too.
    let mut rng = DetRng::new(9004);
    let train = random_dataset(&mut rng, 64, 7);
    let mut model = FastTreeRegressor::new(FastTreeConfig {
        n_trees: 20,
        max_depth: 5,
        ..FastTreeConfig::default()
    });
    model.fit(&train).unwrap();
    for n_rows in [1, 3, 8, 13, 67] {
        let rows = random_matrix(&mut rng, n_rows, 7);
        let mut batch = Vec::new();
        model.predict_batch_into(&rows, &mut batch);
        for (i, &got) in batch.iter().enumerate() {
            assert_eq!(got.to_bits(), model.predict_row(rows.row(i)).to_bits());
        }
    }
}

#[test]
fn scaler_transform_is_bit_identical_to_row_transform() {
    let mut rng = DetRng::new(9005);
    for &(n_rows, n_cols) in &[(1usize, 3usize), (5, 8), (12, 13), (67, 32)] {
        let ds = random_dataset(&mut rng, n_rows, n_cols);
        let scaler = StandardScaler::fit(&ds);
        let transformed = scaler.transform(&ds);
        for i in 0..n_rows {
            let want = scaler.transform_row(ds.row(i));
            for (j, (&got, &w)) in transformed.row(i).iter().zip(&want).enumerate() {
                assert_eq!(got.to_bits(), w.to_bits(), "row {i} col {j}");
            }
        }
    }
}

#[test]
fn dot8_arms_agree_bit_for_bit() {
    let mut rng = DetRng::new(9006);
    let arms = supported_arms();
    for n_cols in [1usize, 4, 8, 13, 32] {
        let rows: Vec<f64> = (0..LANES * n_cols)
            .map(|_| rng.uniform(-1e6, 1e6))
            .collect();
        let weights: Vec<f64> = (0..n_cols).map(|_| rng.uniform(-2.0, 2.0)).collect();
        let mut block = Vec::new();
        simd::transpose_block(&rows, n_cols, &mut block);
        let reference = simd::dot8_with(Isa::Scalar, &block, &weights);
        for &isa in &arms {
            let got = simd::dot8_with(isa, &block, &weights);
            for l in 0..LANES {
                assert_eq!(
                    got[l].to_bits(),
                    reference[l].to_bits(),
                    "{} lane {l} at {n_cols} cols",
                    isa.name()
                );
            }
        }
    }
}

#[test]
fn tree8_arms_agree_bit_for_bit() {
    let mut rng = DetRng::new(9007);
    let arms = supported_arms();
    let n_cols = 14usize;
    for _ in 0..16 {
        let n_trees = 1 + rng.index(64);
        let splits: Vec<[(u32, f64); 8]> = (0..n_trees)
            .map(|_| std::array::from_fn(|_| (rng.index(n_cols) as u32, rng.uniform(-1e3, 1e3))))
            .collect();
        let leaves: Vec<[f64; 8]> = (0..n_trees)
            .map(|_| std::array::from_fn(|_| rng.uniform(-10.0, 10.0)))
            .collect();
        let rows: Vec<f64> = (0..LANES * n_cols)
            .map(|_| rng.uniform(-1e3, 1e3))
            .collect();
        let mut block = Vec::new();
        simd::transpose_block(&rows, n_cols, &mut block);
        let mut reference = [0.5f64; LANES];
        simd::tree8_depth3_accumulate_with(
            Isa::Scalar,
            &splits,
            &leaves,
            0.1,
            &block,
            &mut reference,
        );
        for &isa in &arms {
            let mut acc = [0.5f64; LANES];
            simd::tree8_depth3_accumulate_with(isa, &splits, &leaves, 0.1, &block, &mut acc);
            for l in 0..LANES {
                assert_eq!(
                    acc[l].to_bits(),
                    reference[l].to_bits(),
                    "{} lane {l}, {n_trees} trees",
                    isa.name()
                );
            }
        }
    }
}

#[test]
fn scale_shift_arms_agree_bit_for_bit() {
    let mut rng = DetRng::new(9008);
    let arms = supported_arms();
    for n_cols in [1usize, 3, 8, 13, 32] {
        let n_rows = 11;
        let original: Vec<f64> = (0..n_rows * n_cols)
            .map(|_| rng.uniform(-1e6, 1e6))
            .collect();
        let means: Vec<f64> = (0..n_cols).map(|_| rng.uniform(-10.0, 10.0)).collect();
        let stds: Vec<f64> = (0..n_cols).map(|_| rng.uniform(0.1, 100.0)).collect();
        let mut reference = original.clone();
        simd::scale_shift_rows_with(Isa::Scalar, &mut reference, &means, &stds);
        for &isa in &arms {
            let mut values = original.clone();
            simd::scale_shift_rows_with(isa, &mut values, &means, &stds);
            for (k, (&got, &want)) in values.iter().zip(&reference).enumerate() {
                assert_eq!(got.to_bits(), want.to_bits(), "{} elem {k}", isa.name());
            }
        }
    }
}

#[test]
fn transpose_round_trips_exactly() {
    let mut rng = DetRng::new(9009);
    for n_cols in [1usize, 7, 8, 9, 14, 32, 33] {
        let rows: Vec<f64> = (0..LANES * n_cols)
            .map(|_| rng.uniform(-1e9, 1e9))
            .collect();
        let mut block = Vec::new();
        simd::transpose_block(&rows, n_cols, &mut block);
        for lane in 0..LANES {
            for j in 0..n_cols {
                assert_eq!(
                    block[j * LANES + lane].to_bits(),
                    rows[lane * n_cols + j].to_bits(),
                    "lane {lane} col {j} of {n_cols}"
                );
            }
        }
    }
}

#[test]
fn nan_rows_take_the_descent_path_on_every_arm() {
    // NaN features must go right (`!(x <= t)`) on every arm, exactly like the
    // sequential node walk.
    let arms = supported_arms();
    let n_cols = 4usize;
    let splits: Vec<[(u32, f64); 8]> = vec![std::array::from_fn(|k| (k as u32 % 4, 0.0))];
    let leaves: Vec<[f64; 8]> = vec![std::array::from_fn(|j| j as f64)];
    let mut rows = vec![0.0f64; LANES * n_cols];
    // Lane 0: all NaN (every comparison goes right -> leaf 7).
    rows[..n_cols].fill(f64::NAN);
    let mut block = Vec::new();
    simd::transpose_block(&rows, n_cols, &mut block);
    let mut reference = [0.0f64; LANES];
    simd::tree8_depth3_accumulate_with(Isa::Scalar, &splits, &leaves, 1.0, &block, &mut reference);
    assert_eq!(reference[0], 7.0, "NaN row must land in the rightmost leaf");
    for &isa in &arms {
        let mut acc = [0.0f64; LANES];
        simd::tree8_depth3_accumulate_with(isa, &splits, &leaves, 1.0, &block, &mut acc);
        assert_eq!(acc, reference, "{}", isa.name());
    }
}
