//! Plain-text table rendering for experiment output.
//!
//! The experiment runners in `cleo-bench` print each reproduced paper table/figure as
//! an aligned text table on stdout (and as CSV via [`crate::csvout`]).  This module
//! keeps the formatting logic in one place.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row of already formatted cells. Rows shorter than the header are
    /// padded with empty cells; longer rows are truncated.
    pub fn add_row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.iter().take(self.header.len()).cloned().collect();
        while row.len() < self.header.len() {
            row.push(String::new());
        }
        self.rows.push(row);
    }

    /// Convenience: append a row from string slices.
    pub fn add_row_strs(&mut self, cells: &[&str]) {
        self.add_row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Render the table to a string.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Format a float with a fixed number of decimals (helper for table cells).
pub fn fnum(x: f64, decimals: usize) -> String {
    format!("{:.*}", decimals, x)
}

/// Format a percentage value (already in percent units) like the paper's tables,
/// e.g. `14%`, `258%`.
pub fn fpct(x: f64) -> String {
    if x >= 100.0 {
        format!("{:.0}%", x)
    } else {
        format!("{:.1}%", x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new("Table 4", &["Model", "Correlation", "Median Error"]);
        t.add_row_strs(&["Default", "0.04", "258%"]);
        t.add_row_strs(&["Elastic net", "0.92", "14%"]);
        let s = t.render();
        assert!(s.contains("== Table 4 =="));
        assert!(s.contains("Elastic net"));
        // Header and rows should have the same number of lines: title + header + sep + 2 rows.
        assert_eq!(s.lines().count(), 5);
        // Columns aligned: "Correlation" column starts at the same offset in both rows.
        let lines: Vec<&str> = s.lines().collect();
        let hdr_pos = lines[1].find("Correlation").unwrap();
        assert_eq!(&lines[3][hdr_pos..hdr_pos + 4], "0.04");
    }

    #[test]
    fn short_rows_are_padded_and_long_rows_truncated() {
        let mut t = TextTable::new("", &["a", "b"]);
        t.add_row_strs(&["1"]);
        t.add_row_strs(&["1", "2", "3"]);
        assert_eq!(t.row_count(), 2);
        let s = t.render();
        assert!(!s.contains('3'));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fnum(0.8415, 2), "0.84");
        assert_eq!(fpct(258.4), "258%");
        assert_eq!(fpct(14.23), "14.2%");
    }
}
