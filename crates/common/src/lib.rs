//! Shared utilities for the Cleo reproduction.
//!
//! This crate contains the small, dependency-free building blocks used by every
//! other crate in the workspace:
//!
//! * [`rng`] — deterministic random number generation (every experiment in the
//!   repository is reproducible from a fixed seed),
//! * [`stats`] — descriptive statistics used throughout the paper's evaluation
//!   (Pearson correlation, median/percentile relative errors, quantiles),
//! * [`cdf`] — ratio-distribution helpers used to regenerate the accuracy CDF
//!   figures (Figures 1, 11, 12, 13, 15),
//! * [`hash`] — stable 64-bit hashing used for operator/subgraph signatures
//!   (Section 5.1 of the paper),
//! * [`concurrency`] — cacheline-striped counters for the serving hot path,
//! * [`fault`] — seeded, deterministic fault injection for chaos testing,
//! * [`obs`] — the observability layer: metrics registry, mergeable latency
//!   histograms, and deterministic trace events,
//! * [`scan`] — SWAR byte scanning and span-exact number parsing for the
//!   streaming telemetry readers,
//! * [`table`] — plain-text table rendering for the experiment runners,
//! * [`csvout`] — tiny CSV writer so experiment output can be post-processed,
//! * [`error`] — the shared error type.

pub mod cdf;
pub mod concurrency;
pub mod csvout;
pub mod error;
pub mod fault;
pub mod hash;
pub mod obs;
pub mod rng;
pub mod scan;
pub mod stats;
pub mod table;

pub use error::{CleoError, Result};
pub use fault::{FaultPlan, FaultSite};
pub use obs::{MetricsSnapshot, Obs, TraceEvent};
