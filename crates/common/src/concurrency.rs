//! Contention-free concurrency primitives for the serving hot path.
//!
//! The serving tier counts things on every cost-model invocation: cache
//! hits/misses, model invocations, routing outcomes.  A single shared
//! `AtomicU64` turns each of those counts into a read-modify-write on one
//! cacheline that every serving thread fights over — enough, at millions of
//! predictions per second, to flatten multicore scaling on its own.
//! [`StripedCounter`] spreads the traffic across cacheline-padded stripes:
//! each thread picks a home stripe once (round-robin over threads) and
//! increments only that stripe, so concurrent counting stays core-local;
//! reads sum the stripes.  Totals are exact whenever the counting threads
//! have quiesced (joined or otherwise happens-before the read), which is how
//! every report and test in this repository reads them.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One counter stripe, padded to a cacheline so neighbouring stripes never
/// share one (64 bytes covers every mainstream x86/ARM configuration).
#[repr(align(64))]
#[derive(Debug, Default)]
struct Stripe(AtomicU64);

/// Number of stripes per counter: enough that threads assigned round-robin
/// rarely collide at realistic core counts, small enough that summing stays
/// trivial.  A power of two so the home-stripe pick is a mask.
const STRIPES: usize = 16;

/// Monotonically assigns each OS thread a distinct stripe-selection seed.
static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's round-robin slot (assigned on first use, then fixed).
    static THREAD_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The calling thread's round-robin slot (assigned on first use, then fixed
/// for the thread's lifetime).  Exposed so other striped structures — the
/// observability trace buffers in [`crate::obs`] — shard by the same
/// assignment as the counter stripes and stay core-local together.
#[inline]
pub fn thread_slot() -> usize {
    THREAD_SLOT.with(|slot| {
        let mut s = slot.get();
        if s == usize::MAX {
            s = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
            slot.set(s);
        }
        s
    })
}

/// This thread's stripe index.
#[inline]
fn home_stripe() -> usize {
    thread_slot() & (STRIPES - 1)
}

/// A cacheline-striped monotone counter: contention-free increments, exact
/// sums once the incrementing threads have quiesced.
#[derive(Debug)]
pub struct StripedCounter {
    stripes: [Stripe; STRIPES],
}

impl Default for StripedCounter {
    fn default() -> Self {
        StripedCounter::new()
    }
}

impl StripedCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        StripedCounter {
            stripes: Default::default(),
        }
    }

    /// Add `n` to this thread's home stripe.
    #[inline]
    pub fn add(&self, n: u64) {
        self.stripes[home_stripe()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Sum of all stripes.
    pub fn sum(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Reset every stripe to zero.
    pub fn reset(&self) {
        for s in &self.stripes {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_exactly_across_threads() {
        let counter = StripedCounter::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..10_000 {
                        counter.add(1);
                    }
                });
            }
        });
        assert_eq!(counter.sum(), 80_000);
        counter.reset();
        assert_eq!(counter.sum(), 0);
    }

    #[test]
    fn add_supports_bulk_increments() {
        let counter = StripedCounter::new();
        counter.add(5);
        counter.add(7);
        assert_eq!(counter.sum(), 12);
    }

    #[test]
    fn stripes_are_cacheline_sized() {
        assert_eq!(std::mem::align_of::<Stripe>(), 64);
        assert!(std::mem::size_of::<StripedCounter>() >= STRIPES * 64);
    }
}
