//! Minimal CSV writer for experiment output.
//!
//! Experiment runners write the series behind each reproduced figure to
//! `target/experiments/<exp-id>/*.csv` so the results can be plotted externally.  The
//! writer only needs to quote cells containing separators — no external dependency is
//! warranted for that.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::error::Result;

/// Escape a single CSV cell (RFC 4180 style quoting).
pub fn escape_cell(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Render rows (first row is typically the header) into CSV text.
pub fn to_csv(rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    for row in rows {
        let line: Vec<String> = row.iter().map(|c| escape_cell(c)).collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
    out
}

/// A CSV file being accumulated in memory and flushed to disk on [`CsvWriter::save`].
#[derive(Debug, Clone)]
pub struct CsvWriter {
    path: PathBuf,
    rows: Vec<Vec<String>>,
}

impl CsvWriter {
    /// Create a writer targeting `path`, with the given header row.
    pub fn new(path: impl AsRef<Path>, header: &[&str]) -> Self {
        CsvWriter {
            path: path.as_ref().to_path_buf(),
            rows: vec![header.iter().map(|s| s.to_string()).collect()],
        }
    }

    /// Append a data row.
    pub fn add_row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Append a row of float values formatted with 6 significant digits.
    pub fn add_floats(&mut self, cells: &[f64]) {
        self.add_row(&cells.iter().map(|v| format!("{v:.6}")).collect::<Vec<_>>());
    }

    /// Number of data rows (excluding the header).
    pub fn row_count(&self) -> usize {
        self.rows.len().saturating_sub(1)
    }

    /// Write the accumulated rows to disk, creating parent directories as needed.
    pub fn save(&self) -> Result<()> {
        if let Some(parent) = self.path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut f = fs::File::create(&self.path)?;
        f.write_all(to_csv(&self.rows).as_bytes())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_follows_rfc4180() {
        assert_eq!(escape_cell("plain"), "plain");
        assert_eq!(escape_cell("a,b"), "\"a,b\"");
        assert_eq!(escape_cell("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn to_csv_joins_rows() {
        let rows = vec![
            vec!["a".to_string(), "b".to_string()],
            vec!["1".to_string(), "2,3".to_string()],
        ];
        assert_eq!(to_csv(&rows), "a,b\n1,\"2,3\"\n");
    }

    #[test]
    fn writer_accumulates_and_saves() {
        let dir = std::env::temp_dir().join("cleo_csv_test");
        let path = dir.join("out.csv");
        let mut w = CsvWriter::new(&path, &["x", "y"]);
        w.add_floats(&[1.0, 2.0]);
        w.add_row(&["3".to_string(), "4".to_string()]);
        assert_eq!(w.row_count(), 2);
        w.save().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("x,y\n"));
        assert!(text.contains("3,4"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
