//! Ratio-distribution (CDF) helpers for the paper's accuracy figures.
//!
//! Figures 1, 11, 12, 13 and 15 plot the cumulative distribution of
//! `estimated cost / actual runtime` on a log-scaled x-axis from 10⁻³ to 10³.  The
//! closer the CDF rises near x = 1 (the "ideal" vertical line, labelled 100 in the
//! paper's percent scale), the more accurate the model.  [`RatioCdf`] reproduces that
//! representation: it bins ratios into logarithmically spaced buckets and can emit the
//! series used by the experiment runners.

use crate::stats;

/// Cumulative distribution of prediction/actual ratios over log-spaced buckets.
#[derive(Debug, Clone)]
pub struct RatioCdf {
    /// Sorted ratios (predicted / actual).
    ratios: Vec<f64>,
}

/// One point of an emitted CDF series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdfPoint {
    /// Ratio value (x-axis, log scale in the paper).
    pub ratio: f64,
    /// Fraction of observations with ratio ≤ `ratio` (y-axis).
    pub fraction: f64,
}

impl RatioCdf {
    /// Build from paired predictions and actuals.
    pub fn from_pairs(predicted: &[f64], actual: &[f64]) -> RatioCdf {
        let mut ratios = stats::ratios(predicted, actual);
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        RatioCdf { ratios }
    }

    /// Build directly from precomputed ratios.
    pub fn from_ratios(mut ratios: Vec<f64>) -> RatioCdf {
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        RatioCdf { ratios }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.ratios.len()
    }

    /// True when there are no observations.
    pub fn is_empty(&self) -> bool {
        self.ratios.is_empty()
    }

    /// Fraction of observations with ratio ≤ `x`.
    pub fn fraction_at(&self, x: f64) -> f64 {
        if self.ratios.is_empty() {
            return 0.0;
        }
        let count = self.ratios.partition_point(|&r| r <= x);
        count as f64 / self.ratios.len() as f64
    }

    /// Fraction of observations whose ratio lies within a factor `f` of 1
    /// (i.e. `1/f ≤ ratio ≤ f`).  "Within 2×" is a common summary of the CDF plots.
    pub fn fraction_within_factor(&self, f: f64) -> f64 {
        debug_assert!(f >= 1.0);
        self.fraction_at(f) - self.fraction_at(1.0 / f) + self.point_mass_at(1.0 / f)
    }

    fn point_mass_at(&self, x: f64) -> f64 {
        if self.ratios.is_empty() {
            return 0.0;
        }
        let n = self
            .ratios
            .iter()
            .filter(|&&r| (r - x).abs() < f64::EPSILON)
            .count();
        n as f64 / self.ratios.len() as f64
    }

    /// Fraction of under-estimates (ratio < 1).
    pub fn under_estimation_fraction(&self) -> f64 {
        if self.ratios.is_empty() {
            return 0.0;
        }
        let count = self.ratios.partition_point(|&r| r < 1.0);
        count as f64 / self.ratios.len() as f64
    }

    /// Fraction of over-estimates (ratio > 1).
    pub fn over_estimation_fraction(&self) -> f64 {
        if self.ratios.is_empty() {
            return 0.0;
        }
        1.0 - self.fraction_at(1.0)
    }

    /// Emit a series of `points` CDF samples on a log-spaced grid between
    /// `min_ratio` and `max_ratio` (the paper uses 10⁻³ … 10³).
    pub fn series(&self, min_ratio: f64, max_ratio: f64, points: usize) -> Vec<CdfPoint> {
        debug_assert!(min_ratio > 0.0 && max_ratio > min_ratio && points >= 2);
        let log_lo = min_ratio.ln();
        let log_hi = max_ratio.ln();
        (0..points)
            .map(|i| {
                let t = i as f64 / (points - 1) as f64;
                let ratio = (log_lo + t * (log_hi - log_lo)).exp();
                CdfPoint {
                    ratio,
                    fraction: self.fraction_at(ratio),
                }
            })
            .collect()
    }

    /// Median ratio (bias indicator: > 1 means the model over-estimates on median).
    pub fn median_ratio(&self) -> f64 {
        stats::median(&self.ratios)
    }

    /// The smallest and largest observed ratio, useful for the "100× under-estimate to
    /// 1000× over-estimate" style statements in Section 2.4.
    pub fn range(&self) -> (f64, f64) {
        if self.ratios.is_empty() {
            return (0.0, 0.0);
        }
        (self.ratios[0], *self.ratios.last().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_concentrate_at_one() {
        let actual = [5.0, 10.0, 20.0];
        let cdf = RatioCdf::from_pairs(&actual, &actual);
        assert_eq!(cdf.len(), 3);
        assert!((cdf.fraction_at(1.0) - 1.0).abs() < 1e-12);
        assert!(cdf.fraction_at(0.99) < 1e-12);
        assert!((cdf.median_ratio() - 1.0).abs() < 1e-12);
        assert!((cdf.fraction_within_factor(2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn under_and_over_estimation_fractions() {
        let pred = [0.5, 0.5, 2.0, 1.0];
        let act = [1.0, 1.0, 1.0, 1.0];
        let cdf = RatioCdf::from_pairs(&pred, &act);
        assert!((cdf.under_estimation_fraction() - 0.5).abs() < 1e-12);
        assert!((cdf.over_estimation_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn series_is_monotone_and_spans_grid() {
        let pred = [0.01, 0.1, 1.0, 10.0, 100.0];
        let act = [1.0; 5];
        let cdf = RatioCdf::from_pairs(&pred, &act);
        let series = cdf.series(1e-3, 1e3, 25);
        assert_eq!(series.len(), 25);
        assert!((series[0].ratio - 1e-3).abs() / 1e-3 < 1e-9);
        assert!((series[24].ratio - 1e3).abs() / 1e3 < 1e-9);
        for w in series.windows(2) {
            assert!(w[1].fraction >= w[0].fraction);
        }
        assert!((series[24].fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn range_reports_extremes() {
        let cdf = RatioCdf::from_ratios(vec![0.01, 1.0, 500.0]);
        let (lo, hi) = cdf.range();
        assert_eq!(lo, 0.01);
        assert_eq!(hi, 500.0);
        assert_eq!(RatioCdf::from_ratios(vec![]).range(), (0.0, 0.0));
    }

    #[test]
    fn empty_cdf_is_safe() {
        let cdf = RatioCdf::from_ratios(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at(1.0), 0.0);
        assert_eq!(cdf.under_estimation_fraction(), 0.0);
        assert_eq!(cdf.over_estimation_fraction(), 0.0);
    }
}
