//! Stable 64-bit hashing for operator and subgraph signatures.
//!
//! SCOPE annotates every operator with a 64-bit signature computed bottom-up from the
//! signatures of its children, the operator name, and its logical properties
//! (Section 5.1).  Cleo extends the optimizer to compute three additional signatures,
//! one per individual model family.  The hash must be stable across runs and across
//! platforms (unlike `std::collections::hash_map::DefaultHasher`), so we use FNV-1a
//! with explicit combination helpers.

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// A stable, incremental 64-bit hasher (FNV-1a).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// Create a hasher with the FNV offset basis.
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Feed raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feed a `u64` (little-endian byte order).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Feed a string.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_bytes(s.as_bytes());
        // Separate fields so that ("ab", "c") differs from ("a", "bc").
        self.write_bytes(&[0xff]);
        self
    }

    /// Finish and return the 64-bit hash.
    pub fn finish(&self) -> u64 {
        // One final avalanche (splitmix64 finalizer) so that short inputs spread well.
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Hash a string to a stable 64-bit value.
pub fn hash_str(s: &str) -> u64 {
    let mut h = StableHasher::new();
    h.write_str(s);
    h.finish()
}

/// Combine an ordered sequence of child hashes with a label — the signature recursion
/// used for operator-subgraph signatures (ordering matters).
pub fn combine_ordered(label: &str, children: &[u64]) -> u64 {
    let mut h = StableHasher::new();
    h.write_str(label);
    for &c in children {
        h.write_u64(c);
    }
    h.finish()
}

/// Combine an unordered multiset of hashes with a label — used for the
/// operator-subgraphApprox signature, which ignores operator ordering underneath the
/// root (Section 4.2).
pub fn combine_unordered(label: &str, children: &[u64]) -> u64 {
    let mut sorted: Vec<u64> = children.to_vec();
    sorted.sort_unstable();
    combine_ordered(label, &sorted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic() {
        assert_eq!(hash_str("HashJoin"), hash_str("HashJoin"));
        assert_ne!(hash_str("HashJoin"), hash_str("MergeJoin"));
    }

    #[test]
    fn field_separation_prevents_concatenation_collisions() {
        let mut a = StableHasher::new();
        a.write_str("ab").write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn ordered_combination_is_order_sensitive() {
        let c1 = hash_str("scan:left");
        let c2 = hash_str("scan:right");
        assert_ne!(
            combine_ordered("join", &[c1, c2]),
            combine_ordered("join", &[c2, c1])
        );
    }

    #[test]
    fn unordered_combination_is_order_insensitive() {
        let c1 = hash_str("filter");
        let c2 = hash_str("project");
        let c3 = hash_str("scan");
        assert_eq!(
            combine_unordered("agg", &[c1, c2, c3]),
            combine_unordered("agg", &[c3, c1, c2])
        );
        assert_ne!(
            combine_unordered("agg", &[c1, c2]),
            combine_unordered("agg", &[c1, c3])
        );
    }

    #[test]
    fn label_changes_hash() {
        let c = [hash_str("x")];
        assert_ne!(combine_ordered("a", &c), combine_ordered("b", &c));
    }

    #[test]
    fn u64_writes_differ_from_equivalent_strings() {
        let mut a = StableHasher::new();
        a.write_u64(1);
        let mut b = StableHasher::new();
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }
}
