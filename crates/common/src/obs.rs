//! Unified observability: metrics registry, latency histograms, trace events.
//!
//! The serving and feedback stack counts things everywhere — routing
//! outcomes, pool panics, cache hits — but each count used to live in its own
//! ad-hoc struct, and "what happened in this run, in order" was unanswerable
//! without printlns.  This module is the shared substrate:
//!
//! * [`MetricsRegistry`] — a named directory of [`StripedCounter`]s,
//!   [`Gauge`]s, and [`LatencyHistogram`]s.  Registration and name lookup are
//!   cold (mutex-guarded maps); the hot path is the retained handles, whose
//!   increments are the same contention-free striped/padded atomics the
//!   serving tier already uses.  Components keep owning their counters and
//!   *register* the same `Arc` under a public name, so every count has
//!   exactly one source of truth.
//! * [`LatencyHistogram`] — cacheline-padded log-linear bins (4 sub-buckets
//!   of precision per power of two, ≤ 6.25% relative error) over u64
//!   nanoseconds.  Quantiles are a deterministic rank walk over the bins, and
//!   [`LatencyHistogram::merge_from`] is plain bin addition, so a sharded
//!   merge is bit-identical to serial recording of the same multiset —
//!   mergeable percentiles instead of collect-and-sort.
//! * [`TraceLog`] — bounded per-thread-striped buffers of typed
//!   [`TraceEvent`]s.  Events carry a *logical* sequence number assigned by
//!   the caller from a deterministic identity (request number, batch
//!   submission sequence, breaker outcome index, `epoch << 8 | cluster`,
//!   record index) — never wall clocks or thread ids — so a 1-thread and an
//!   N-thread run of the same workload produce the same event multiset, and
//!   [`TraceLog::drain_sorted`] the same event *sequence* (test-pinned).
//!
//! The whole layer threads through production code as `Option<Arc<Obs>>`, in
//! the style of [`crate::fault::FaultPlan`]: the disabled path costs one
//! pointer-nullness branch per site, allocates nothing, and is bit-identical
//! to the enabled path in every serving result.
//!
//! Metric and event names are lowercase dotted identifiers (`[a-z0-9_.]`),
//! which keeps the JSON exporter escape-free.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::concurrency::{thread_slot, StripedCounter};
use crate::table::TextTable;

/// `cluster` value for events not attributable to one cluster shard.
pub const NO_CLUSTER: u16 = u16::MAX;

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

/// A last-value / high-water metric.  Unlike a counter it can move both ways;
/// writers use [`Gauge::set`] for last-value semantics or [`Gauge::set_max`]
/// for high-water marks.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the value to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Latency histogram
// ---------------------------------------------------------------------------

/// Sub-buckets per power of two (16 = 4 bits of mantissa, ≤ 1/16 relative
/// bucket width).  A power of two so index math is shifts and masks.
const HIST_SUB: usize = 16;

/// Total bins: values 0..15 get exact unit bins (group 0); each further
/// power-of-two group `1..=60` gets [`HIST_SUB`] bins, covering all of u64.
const HIST_BINS: usize = HIST_SUB + 60 * HIST_SUB;

/// A cacheline-padded `AtomicU64` for the histogram header fields, so the
/// frequently-written `count`/`sum`/`max` never share a line with each other
/// or with the first bins.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedAtomicU64(AtomicU64);

/// Log-linear latency histogram over u64 nanoseconds with deterministic,
/// mergeable quantiles (see the module docs).
///
/// Recording is two relaxed atomic adds and one `fetch_max`; there are no
/// locks and no allocation after construction.  Quantiles report the *upper
/// bound* of the bucket containing the requested rank (clamped to the exact
/// observed maximum), so `serial recording`, `sharded recording + merge`,
/// and `merge of per-shard histograms` of the same value multiset all report
/// bit-identical numbers.
#[derive(Debug)]
pub struct LatencyHistogram {
    /// Observation count (padded: every record writes it).
    count: PaddedAtomicU64,
    /// Saturating sum of recorded nanoseconds (for the mean).
    sum: PaddedAtomicU64,
    /// Exact maximum recorded value.
    max: PaddedAtomicU64,
    /// Log-linear bins.
    bins: Vec<AtomicU64>,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// The bin index for value `v`: exact below [`HIST_SUB`], then 16 sub-buckets
/// per power of two.
#[inline]
fn hist_bucket(v: u64) -> usize {
    if v < HIST_SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // >= 4
    let group = msb - 3; // 1..=60
    let sub = ((v >> (msb - 4)) & (HIST_SUB as u64 - 1)) as usize;
    group * HIST_SUB + sub
}

/// The largest value that lands in bin `idx` (inclusive upper bound).
fn hist_bucket_upper(idx: usize) -> u64 {
    if idx < HIST_SUB {
        return idx as u64;
    }
    let group = idx / HIST_SUB; // 1..=60
    let sub = (idx % HIST_SUB) as u64;
    let width = 1u64 << (group - 1);
    let base = 1u64 << (group + 3);
    // `base - 1` first: the top bucket's bound is exactly u64::MAX, and
    // adding before subtracting would overflow there.
    base - 1 + (sub + 1) * width
}

impl LatencyHistogram {
    /// An empty histogram (~8 KiB of bins).
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            count: PaddedAtomicU64::default(),
            sum: PaddedAtomicU64::default(),
            max: PaddedAtomicU64::default(),
            bins: (0..HIST_BINS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Record one observation of `v` nanoseconds.
    #[inline]
    pub fn record_nanos(&self, v: u64) {
        self.bins[hist_bucket(v)].fetch_add(1, Ordering::Relaxed);
        self.count.0.fetch_add(1, Ordering::Relaxed);
        self.sum.0.fetch_add(v, Ordering::Relaxed);
        self.max.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Record one observation of a [`Duration`] (saturating at u64 nanos).
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_nanos(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.0.load(Ordering::Relaxed)
    }

    /// Sum of recorded nanoseconds.
    pub fn sum_nanos(&self) -> u64 {
        self.sum.0.load(Ordering::Relaxed)
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max_nanos(&self) -> u64 {
        self.max.0.load(Ordering::Relaxed)
    }

    /// Fold another histogram into this one: plain bin addition plus a max
    /// fold, so merge order never changes any reported quantile.
    pub fn merge_from(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.bins.iter().zip(&other.bins) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .0
            .fetch_add(other.count.0.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .0
            .fetch_add(other.sum.0.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .0
            .fetch_max(other.max.0.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// The quantile `q` in nanoseconds: a rank walk over the bins returning
    /// the containing bucket's upper bound, clamped to the exact maximum.
    /// Deterministic for a given recorded multiset regardless of recording
    /// order, sharding, or merges.  Returns 0 when empty.
    pub fn quantile_nanos(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (idx, bin) in self.bins.iter().enumerate() {
            seen += bin.load(Ordering::Relaxed);
            if seen >= rank {
                return hist_bucket_upper(idx).min(self.max_nanos());
            }
        }
        self.max_nanos()
    }

    /// Zero every bin and header field.
    pub fn reset(&self) {
        for bin in &self.bins {
            bin.store(0, Ordering::Relaxed);
        }
        self.count.0.store(0, Ordering::Relaxed);
        self.sum.0.store(0, Ordering::Relaxed);
        self.max.0.store(0, Ordering::Relaxed);
    }

    /// A point-in-time summary (exact once writers have quiesced).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum_nanos: self.sum_nanos(),
            p50_nanos: self.quantile_nanos(0.50),
            p95_nanos: self.quantile_nanos(0.95),
            p99_nanos: self.quantile_nanos(0.99),
            max_nanos: self.max_nanos(),
        }
    }
}

/// Summary of a [`LatencyHistogram`] at one point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observation count.
    pub count: u64,
    /// Sum of recorded nanoseconds.
    pub sum_nanos: u64,
    /// Median (bucket upper bound, clamped to max).
    pub p50_nanos: u64,
    /// 95th percentile.
    pub p95_nanos: u64,
    /// 99th percentile.
    pub p99_nanos: u64,
    /// Exact maximum.
    pub max_nanos: u64,
}

impl HistogramSnapshot {
    /// Mean in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> u64 {
        self.sum_nanos.checked_div(self.count).unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// Trace events
// ---------------------------------------------------------------------------

/// Front-door admission verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdmissionKind {
    /// Admitted into a shard queue.
    Admitted,
    /// Deferred under delay-style backpressure.
    Delayed,
    /// Rejected under shed backpressure.
    Shed,
}

/// Route-resolution outcomes (mirrors the router's stamp vocabulary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteKind {
    /// Served by the cluster's own model.
    Own,
    /// Served by a similar cluster's donor model.
    Donor,
    /// Served by the version-0 heuristic fallback.
    Fallback,
}

/// Circuit-breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BreakerKind {
    /// Serving normally.
    Closed,
    /// Tripped: the shard's own model is bypassed.
    Open,
    /// Cooldown elapsed: one probe decides open vs closed.
    HalfOpen,
}

/// How a registry version came to be current.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PublishKind {
    /// Full epoch publish.
    Epoch,
    /// Delta-derived publish.
    Delta,
    /// Rollback to an earlier serving-stack entry.
    Rollback,
}

/// Publish-watchdog verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WatchdogKind {
    /// Live error within budget; version stays.
    Healthy,
    /// Live error regressed; the watchdog rolled back.
    RolledBack,
}

macro_rules! kind_strings {
    ($ty:ty { $($variant:ident => $s:literal),+ $(,)? }) => {
        impl $ty {
            /// Stable lowercase tag used by the NDJSON exporter.
            pub fn as_str(self) -> &'static str {
                match self {
                    $(<$ty>::$variant => $s,)+
                }
            }

            /// Parse the NDJSON tag back (inverse of [`Self::as_str`]).
            pub fn parse(s: &str) -> Option<Self> {
                match s {
                    $($s => Some(<$ty>::$variant),)+
                    _ => None,
                }
            }

            /// Dense code for deterministic sort keys.
            fn code(self) -> u64 {
                self as u64
            }
        }
    };
}

kind_strings!(AdmissionKind { Admitted => "admitted", Delayed => "delayed", Shed => "shed" });
kind_strings!(RouteKind { Own => "own", Donor => "donor", Fallback => "fallback" });
kind_strings!(BreakerKind { Closed => "closed", Open => "open", HalfOpen => "half_open" });
kind_strings!(PublishKind { Epoch => "epoch", Delta => "delta", Rollback => "rollback" });
kind_strings!(WatchdogKind { Healthy => "healthy", RolledBack => "rolled_back" });

/// One typed trace event.  `seq` is always a *logical* sequence number
/// assigned by the emitting site from a deterministic identity (see the
/// module docs) — never a wall clock — which is what makes event multisets
/// thread-count-invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceEvent {
    /// Front-door admission verdict for one request (`seq` = request number).
    Admission {
        /// Request number (offer order).
        seq: u64,
        /// Target shard.
        shard: u16,
        /// Verdict.
        verdict: AdmissionKind,
    },
    /// A coalesced batch left staging (`seq` = first member's request number).
    Batch {
        /// First member's request number.
        seq: u64,
        /// Shard the batch was submitted to.
        shard: u16,
        /// Number of coalesced requests.
        jobs: u32,
    },
    /// Route resolution for one optimization (`seq` = job id).
    Route {
        /// Job id.
        seq: u64,
        /// Requested cluster.
        cluster: u16,
        /// Where the request was actually served.
        outcome: RouteKind,
        /// Model version served (0 for the heuristic fallback).
        version: u64,
    },
    /// Circuit-breaker state change (`seq` = folded outcome index).
    Breaker {
        /// Outcome index at which the transition took effect.
        seq: u64,
        /// Cluster whose breaker transitioned.
        cluster: u16,
        /// New state.
        state: BreakerKind,
    },
    /// A registry version became current (`seq` = new version; for rollbacks
    /// the version rolled back *from*).
    Publish {
        /// New version (rollbacks: the abandoned version).
        seq: u64,
        /// Cluster shard ([`NO_CLUSTER`] for unsharded registries).
        cluster: u16,
        /// How the version came to be current.
        lineage: PublishKind,
        /// The version now serving.
        version: u64,
    },
    /// Publish-watchdog verdict (`seq` = `version << 8 | cluster`).
    Watchdog {
        /// `version << 8 | cluster` of the checked publish.
        seq: u64,
        /// Cluster whose publish was checked.
        cluster: u16,
        /// Verdict.
        verdict: WatchdogKind,
        /// The version that was checked.
        version: u64,
    },
    /// A telemetry record was quarantined (`seq` = absolute record number).
    Quarantine {
        /// Absolute record number (1-based).
        seq: u64,
        /// The record number again (kept explicit for the NDJSON schema).
        record: u64,
        /// 1-based line of the parse failure within the record's input.
        line: u64,
    },
}

impl TraceEvent {
    /// Total-order key: logical sequence first, then kind, then payload.
    /// Injective over the event's fields, so sorting by it yields one
    /// deterministic order per event multiset.
    fn sort_key(&self) -> (u64, u8, u64, u64, u64) {
        match *self {
            TraceEvent::Admission {
                seq,
                shard,
                verdict,
            } => (seq, 0, shard as u64, verdict.code(), 0),
            TraceEvent::Batch { seq, shard, jobs } => (seq, 1, shard as u64, jobs as u64, 0),
            TraceEvent::Route {
                seq,
                cluster,
                outcome,
                version,
            } => (seq, 2, cluster as u64, outcome.code(), version),
            TraceEvent::Breaker {
                seq,
                cluster,
                state,
            } => (seq, 3, cluster as u64, state.code(), 0),
            TraceEvent::Publish {
                seq,
                cluster,
                lineage,
                version,
            } => (seq, 4, cluster as u64, lineage.code(), version),
            TraceEvent::Watchdog {
                seq,
                cluster,
                verdict,
                version,
            } => (seq, 5, cluster as u64, verdict.code(), version),
            TraceEvent::Quarantine { seq, record, line } => (seq, 6, record, line, 0),
        }
    }

    /// The event's logical sequence number.
    pub fn seq(&self) -> u64 {
        self.sort_key().0
    }

    /// Stable lowercase kind tag (`"admission"`, `"batch"`, ...).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Admission { .. } => "admission",
            TraceEvent::Batch { .. } => "batch",
            TraceEvent::Route { .. } => "route",
            TraceEvent::Breaker { .. } => "breaker",
            TraceEvent::Publish { .. } => "publish",
            TraceEvent::Watchdog { .. } => "watchdog",
            TraceEvent::Quarantine { .. } => "quarantine",
        }
    }
}

impl PartialOrd for TraceEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TraceEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.sort_key().cmp(&other.sort_key())
    }
}

// ---------------------------------------------------------------------------
// Trace log
// ---------------------------------------------------------------------------

/// Trace buffer stripes — matches the counter stripe count so the same
/// [`thread_slot`] assignment keeps both core-local.
const TRACE_SHARDS: usize = 16;

/// Default per-stripe capacity (total default capacity: 16 × 8192 events).
const TRACE_SHARD_CAPACITY: usize = 8192;

/// One bounded event buffer, cacheline-aligned so stripes don't share lines.
#[repr(align(64))]
#[derive(Debug)]
struct TraceShard {
    events: Mutex<Vec<TraceEvent>>,
}

/// Bounded, thread-striped collection of [`TraceEvent`]s.
///
/// Each thread records into its home stripe (same assignment as the
/// [`StripedCounter`] stripes), so recording is an uncontended lock plus a
/// push into preallocated capacity — no allocation, no cross-core traffic in
/// steady state.  Capacity is bounded: overflowing events are counted in
/// [`TraceLog::dropped`] and discarded rather than growing without limit.
#[derive(Debug)]
pub struct TraceLog {
    shards: Vec<TraceShard>,
    dropped: StripedCounter,
    capacity_per_shard: usize,
}

impl Default for TraceLog {
    fn default() -> Self {
        TraceLog::new()
    }
}

impl TraceLog {
    /// A log with the default capacity.
    pub fn new() -> TraceLog {
        TraceLog::with_capacity(TRACE_SHARD_CAPACITY)
    }

    /// A log holding up to `capacity_per_shard` events in each of the 16
    /// stripes (buffers are fully preallocated here).
    pub fn with_capacity(capacity_per_shard: usize) -> TraceLog {
        TraceLog {
            shards: (0..TRACE_SHARDS)
                .map(|_| TraceShard {
                    events: Mutex::new(Vec::with_capacity(capacity_per_shard)),
                })
                .collect(),
            dropped: StripedCounter::new(),
            capacity_per_shard,
        }
    }

    /// Record one event into the calling thread's home stripe.  Never
    /// allocates; events past the stripe capacity are counted and dropped.
    #[inline]
    pub fn record(&self, event: TraceEvent) {
        let shard = &self.shards[thread_slot() & (TRACE_SHARDS - 1)];
        let mut events = shard.events.lock().expect("trace shard poisoned");
        if events.len() < self.capacity_per_shard {
            events.push(event);
        } else {
            self.dropped.add(1);
        }
    }

    /// Number of buffered events across all stripes.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.events.lock().expect("trace shard poisoned").len())
            .sum()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.sum()
    }

    /// Drain every stripe and return the events in the deterministic total
    /// order (sequence, kind, payload).  Exact once recording threads have
    /// quiesced — the same discipline every report in this repo follows.
    pub fn drain_sorted(&self) -> Vec<TraceEvent> {
        let mut all = Vec::new();
        for shard in &self.shards {
            all.append(&mut shard.events.lock().expect("trace shard poisoned"));
        }
        all.sort_unstable();
        all
    }

    /// Like [`TraceLog::drain_sorted`] but leaves the buffers intact.
    pub fn snapshot_sorted(&self) -> Vec<TraceEvent> {
        let mut all = Vec::new();
        for shard in &self.shards {
            all.extend(shard.events.lock().expect("trace shard poisoned").iter());
        }
        all.sort_unstable();
        all
    }
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// Named directory of counters, gauges, and histograms (see module docs).
///
/// Lookup/registration is mutex-guarded and meant for setup and snapshot
/// time; hot paths hold the returned `Arc` handles and never touch the maps.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<StripedCounter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<LatencyHistogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<StripedCounter> {
        let mut map = self.counters.lock().expect("registry poisoned");
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(StripedCounter::new());
        map.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// Adopt an existing counter under `name`: the owner keeps incrementing
    /// the same object, the registry snapshots it.  Re-registering a name
    /// replaces the previous binding (last writer wins).
    pub fn register_counter(&self, name: &str, counter: &Arc<StripedCounter>) {
        self.counters
            .lock()
            .expect("registry poisoned")
            .insert(name.to_string(), Arc::clone(counter));
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("registry poisoned");
        if let Some(g) = map.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new());
        map.insert(name.to_string(), Arc::clone(&g));
        g
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<LatencyHistogram> {
        let mut map = self.histograms.lock().expect("registry poisoned");
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(LatencyHistogram::new());
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// Adopt an existing histogram under `name` (see
    /// [`MetricsRegistry::register_counter`]).
    pub fn register_histogram(&self, name: &str, histogram: &Arc<LatencyHistogram>) {
        self.histograms
            .lock()
            .expect("registry poisoned")
            .insert(name.to_string(), Arc::clone(histogram));
    }

    /// Point-in-time values of every registered metric, name-sorted.  Exact
    /// once writers have quiesced.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(name, c)| (name.clone(), c.sum()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// Point-in-time values of every metric in a [`MetricsRegistry`]
/// (name-sorted within each section).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, total)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, u64)>,
    /// `(name, summary)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Counter total by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Render every metric as one text table (empty string when no metrics
    /// are registered).
    pub fn render(&self) -> String {
        if self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty() {
            return String::new();
        }
        let mut table = TextTable::new(
            "metrics",
            &[
                "metric", "kind", "value", "p50_ns", "p95_ns", "p99_ns", "max_ns",
            ],
        );
        for (name, v) in &self.counters {
            table.add_row(&[
                name.clone(),
                "counter".to_string(),
                v.to_string(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ]);
        }
        for (name, v) in &self.gauges {
            table.add_row(&[
                name.clone(),
                "gauge".to_string(),
                v.to_string(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ]);
        }
        for (name, h) in &self.histograms {
            table.add_row(&[
                name.clone(),
                "histogram".to_string(),
                h.count.to_string(),
                h.p50_nanos.to_string(),
                h.p95_nanos.to_string(),
                h.p99_nanos.to_string(),
                h.max_nanos.to_string(),
            ]);
        }
        table.render()
    }

    /// Compact single-line JSON object (metric names are restricted to
    /// `[a-z0-9_.]`, so no escaping is needed).  Embedded verbatim into the
    /// `"metrics"` field of every `BENCH_*.json`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            write!(out, "{sep}\"{name}\": {v}").expect("write to String");
        }
        out.push_str("}, \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            write!(out, "{sep}\"{name}\": {v}").expect("write to String");
        }
        out.push_str("}, \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            write!(
                out,
                "{sep}\"{name}\": {{\"count\": {}, \"sum_ns\": {}, \"p50_ns\": {}, \
                 \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
                h.count, h.sum_nanos, h.p50_nanos, h.p95_nanos, h.p99_nanos, h.max_nanos
            )
            .expect("write to String");
        }
        out.push_str("}}");
        out
    }
}

// ---------------------------------------------------------------------------
// Obs handle
// ---------------------------------------------------------------------------

/// The observability handle the stack threads as `Option<Arc<Obs>>`: one
/// metrics registry plus one trace log.  `None` is the production default —
/// bit-identical serving results, zero allocation, one nullness branch per
/// site (pinned by `zero_alloc.rs` and the observability suite).
#[derive(Debug, Default)]
pub struct Obs {
    metrics: MetricsRegistry,
    trace: TraceLog,
}

impl Obs {
    /// A fresh registry + trace log with default trace capacity.
    pub fn new() -> Obs {
        Obs::default()
    }

    /// A fresh registry with `capacity_per_shard` trace slots per stripe.
    pub fn with_trace_capacity(capacity_per_shard: usize) -> Obs {
        Obs {
            metrics: MetricsRegistry::new(),
            trace: TraceLog::with_capacity(capacity_per_shard),
        }
    }

    /// Convenience: wrap in the `Option<Arc<..>>` shape the seams thread
    /// (mirrors [`crate::fault::FaultPlan::handle`]).
    pub fn handle(self) -> Option<Arc<Obs>> {
        Some(Arc::new(self))
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The trace log.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Record one trace event.
    #[inline]
    pub fn emit(&self, event: TraceEvent) {
        self.trace.record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    #[test]
    fn histogram_buckets_are_ordered_and_tight() {
        // Bucket indices are monotone in the value and upper bounds are
        // inclusive: every value lands in a bucket whose bound contains it.
        let mut prev = 0usize;
        for shift in 0..64u32 {
            let v = 1u64 << shift;
            for v in [v, v + 1, v.wrapping_mul(3) / 2] {
                let idx = hist_bucket(v);
                assert!(idx >= prev.saturating_sub(HIST_SUB), "monotone-ish walk");
                assert!(v <= hist_bucket_upper(idx), "{v} in bucket {idx}");
                if idx > 0 {
                    assert!(
                        v > hist_bucket_upper(idx - 1),
                        "{v} past bucket {}",
                        idx - 1
                    );
                }
                prev = idx;
            }
        }
        // Small values are exact.
        for v in 0..16u64 {
            assert_eq!(hist_bucket(v), v as usize);
            assert_eq!(hist_bucket_upper(v as usize), v);
        }
        // The top bucket reaches u64::MAX.
        assert_eq!(hist_bucket(u64::MAX), HIST_BINS - 1);
        assert_eq!(hist_bucket_upper(HIST_BINS - 1), u64::MAX);
        // Relative bucket width stays within 1/16.
        let v = 1_000_000u64;
        let idx = hist_bucket(v);
        let width = hist_bucket_upper(idx) - hist_bucket_upper(idx - 1);
        assert!(width as f64 / v as f64 <= 1.0 / 16.0 + 1e-9);
    }

    #[test]
    fn histogram_merge_is_bit_identical_to_serial() {
        let mut rng = DetRng::new(0xc1e0);
        let values: Vec<u64> = (0..10_000).map(|_| rng.next_u64() >> 24).collect();

        let serial = LatencyHistogram::new();
        for &v in &values {
            serial.record_nanos(v);
        }

        // Shard the same multiset four ways, merge in an arbitrary order.
        let shards: Vec<LatencyHistogram> = (0..4).map(|_| LatencyHistogram::new()).collect();
        for (i, &v) in values.iter().enumerate() {
            shards[i % 4].record_nanos(v);
        }
        let merged = LatencyHistogram::new();
        for shard in [3usize, 0, 2, 1] {
            merged.merge_from(&shards[shard]);
        }

        assert_eq!(serial.snapshot(), merged.snapshot());
        assert_eq!(serial.count(), 10_000);
        for q in [0.0, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0] {
            assert_eq!(serial.quantile_nanos(q), merged.quantile_nanos(q));
        }
        // Quantiles are within the bucket's relative error of the exact rank
        // statistic, and never exceed the exact max.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let exact_p50 = sorted[(0.50f64 * 10_000.0).ceil() as usize - 1];
        let approx = serial.quantile_nanos(0.50);
        assert!(approx >= exact_p50 && approx as f64 <= exact_p50 as f64 * (1.0 + 1.0 / 16.0));
        assert_eq!(serial.max_nanos(), *sorted.last().unwrap());
        assert!(serial.quantile_nanos(1.0) == serial.max_nanos());
    }

    #[test]
    fn histogram_handles_empty_and_reset() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_nanos(0.5), 0);
        assert_eq!(h.snapshot().mean_nanos(), 0);
        h.record(Duration::from_nanos(42));
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile_nanos(0.5), 42);
        assert_eq!(h.snapshot().mean_nanos(), 42);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max_nanos(), 0);
    }

    #[test]
    fn registry_get_or_create_and_adoption() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("router.own_hits");
        let b = reg.counter("router.own_hits");
        assert!(Arc::ptr_eq(&a, &b), "same name, same counter");
        a.add(3);

        // Adoption: an externally-owned counter becomes the source of truth.
        let owned = Arc::new(StripedCounter::new());
        owned.add(7);
        reg.register_counter("pool.worker_panics", &owned);
        owned.add(1);

        let gauge = reg.gauge("front_door.shard0.queue_high_water");
        gauge.set_max(5);
        gauge.set_max(3);
        let hist = reg.histogram("front_door.latency");
        hist.record_nanos(100);

        let snap = reg.snapshot();
        assert_eq!(snap.counter("router.own_hits"), Some(3));
        assert_eq!(snap.counter("pool.worker_panics"), Some(8));
        assert_eq!(snap.gauge("front_door.shard0.queue_high_water"), Some(5));
        assert_eq!(snap.histogram("front_door.latency").unwrap().count, 1);
        assert_eq!(snap.counter("no.such"), None);

        // Sections are name-sorted (BTreeMap order) for stable exports.
        assert!(snap.counters.windows(2).all(|w| w[0].0 < w[1].0));

        let json = snap.to_json();
        assert!(json.starts_with("{\"counters\": {"));
        assert!(json.contains("\"pool.worker_panics\": 8"));
        assert!(json.contains("\"p50_ns\": 100"));
        let table = snap.render();
        assert!(table.contains("router.own_hits"));
        assert!(table.contains("histogram"));
        assert!(MetricsRegistry::new().snapshot().render().is_empty());
    }

    #[test]
    fn trace_log_sorts_deterministically_and_bounds_capacity() {
        let log = TraceLog::with_capacity(4);
        // Record out of order; drain comes back seq-sorted.
        for seq in [3u64, 1, 2, 0] {
            log.record(TraceEvent::Route {
                seq,
                cluster: 1,
                outcome: RouteKind::Own,
                version: 1,
            });
        }
        assert_eq!(log.len(), 4);
        let events = log.snapshot_sorted();
        let seqs: Vec<u64> = events.iter().map(|e| e.seq()).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        // Same seq: kind rank breaks the tie deterministically.
        let tie = TraceLog::with_capacity(8);
        tie.record(TraceEvent::Breaker {
            seq: 9,
            cluster: 0,
            state: BreakerKind::Open,
        });
        tie.record(TraceEvent::Admission {
            seq: 9,
            shard: 0,
            verdict: AdmissionKind::Admitted,
        });
        let drained = tie.drain_sorted();
        assert_eq!(drained[0].kind(), "admission");
        assert_eq!(drained[1].kind(), "breaker");
        assert!(tie.is_empty(), "drain clears the buffers");
        // Past capacity (single-threaded: one stripe), events are dropped and
        // counted, never reallocated.
        for seq in 0..10u64 {
            log.record(TraceEvent::Quarantine {
                seq,
                record: seq,
                line: 1,
            });
        }
        assert_eq!(log.len(), 4, "stripe capacity bounds the buffer");
        assert_eq!(log.dropped(), 10);
    }

    #[test]
    fn multithreaded_recording_produces_one_multiset() {
        // The same logical events recorded from 1 thread and from 4 threads
        // drain to identical sequences: order and content never depend on
        // interleaving, only on the logical seq.
        let record_all = |threads: usize| -> Vec<TraceEvent> {
            let obs = Obs::new();
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let obs = &obs;
                    scope.spawn(move || {
                        for seq in (t as u64..400).step_by(threads) {
                            obs.emit(TraceEvent::Route {
                                seq,
                                cluster: (seq % 4) as u16,
                                outcome: RouteKind::Own,
                                version: 1,
                            });
                            obs.metrics().counter("x").add(1);
                        }
                    });
                }
            });
            assert_eq!(obs.metrics().snapshot().counter("x"), Some(400));
            obs.trace().drain_sorted()
        };
        assert_eq!(record_all(1), record_all(4));
    }

    #[test]
    fn obs_handle_mirrors_fault_plan_seam() {
        let obs: Option<Arc<Obs>> = Obs::new().handle();
        assert!(obs.is_some());
        let none: Option<Arc<Obs>> = None;
        assert!(none.is_none());
    }
}
