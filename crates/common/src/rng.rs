//! Deterministic random number generation.
//!
//! Every stochastic component in the reproduction (workload generation, cloud
//! variance noise, model subsampling, train/test splits) draws from a seeded
//! generator so that experiment runs are exactly reproducible.  The generator is
//! an in-tree xoshiro256++ (public-domain algorithm by Blackman & Vigna) seeded
//! through splitmix64 — the workspace builds offline with zero external crates —
//! plus the handful of distributions the paper's simulation needs (log-normal
//! noise for cloud variance, Zipf-like skew for data distributions, Poisson for
//! ad-hoc job arrivals).

/// splitmix64 step: the recommended seeder for xoshiro, also used to decorrelate
/// derived stream labels.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic RNG with the distribution helpers used across the workspace.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
}

impl DetRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { state }
    }

    /// Derive a child generator from this one and a stream label.  Used to give each
    /// cluster / day / job its own independent but reproducible stream.  Does not
    /// advance this generator.
    pub fn derive(&self, label: u64) -> Self {
        // Mix the label with splitmix64 so that nearby labels do not correlate.
        let mut sm = label;
        let z = splitmix64(&mut sm);
        DetRng::new(self.seed_material() ^ z)
    }

    fn seed_material(&self) -> u64 {
        // Peek at the next output without advancing the stream.
        self.clone().next_u64()
    }

    /// The raw xoshiro256++ step: uniform u64.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high bits → the standard uniform double construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn int_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi >= lo, "int_range: empty range [{lo}, {hi}]");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        // Widening-multiply bounded draw (Lemire, without the rejection step: the
        // residual bias over spans ≪ 2^64 is immaterial for simulation use).
        let m = (self.next_u64() as u128) * ((span + 1) as u128);
        lo + (m >> 64) as u64
    }

    /// Uniform usize in `[0, n)`, for index selection. `n` must be > 0.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index: empty range");
        self.int_range(0, (n - 1) as u64) as usize
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Standard normal draw (Box–Muller).
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        let u1 = self.unit().max(1e-12);
        let u2 = self.unit();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std * z
    }

    /// Log-normal multiplicative noise with the given sigma (in log space), mean 1.
    ///
    /// This models cloud runtime variance (Schad et al., cited as [42] in the paper):
    /// the same operator on the same data can differ in latency by tens of percent
    /// between runs.
    pub fn lognormal_noise(&mut self, sigma: f64) -> f64 {
        // E[exp(N(mu, sigma^2))] = exp(mu + sigma^2/2); choose mu so the mean is 1.
        let mu = -sigma * sigma / 2.0;
        self.normal(mu, sigma).exp()
    }

    /// Zipf-like skew factor in `[1, n]`: returns a rank with probability proportional
    /// to `1 / rank^theta`.  Used to pick popular inputs/templates.
    pub fn zipf(&mut self, n: usize, theta: f64) -> usize {
        debug_assert!(n > 0);
        // Inverse-CDF over the normalised weights; n is small in our generators
        // (hundreds), so the O(n) loop is fine and keeps the code obvious.
        let norm: f64 = (1..=n).map(|r| 1.0 / (r as f64).powf(theta)).sum();
        let mut u = self.unit() * norm;
        for r in 1..=n {
            let w = 1.0 / (r as f64).powf(theta);
            if u < w {
                return r;
            }
            u -= w;
        }
        n
    }

    /// Poisson draw via Knuth's algorithm (lambda is small in our generators).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            k += 1;
            p *= self.unit();
            if p <= l {
                return k - 1;
            }
            if k > 10_000 {
                return k; // guard against pathological lambda
            }
        }
    }

    /// Sample `k` distinct indices from `[0, n)` without replacement
    /// (partial Fisher–Yates).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Shuffle a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        let n = xs.len();
        if n <= 1 {
            return;
        }
        for i in (1..n).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Pick a random element of a slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.unit().to_bits(), b.unit().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..50).filter(|_| a.unit() == b.unit()).count();
        assert!(same < 5);
    }

    #[test]
    fn derive_gives_independent_streams() {
        let base = DetRng::new(42);
        let mut c1 = base.derive(1);
        let mut c2 = base.derive(2);
        let mut equal = 0;
        for _ in 0..100 {
            if c1.unit() == c2.unit() {
                equal += 1;
            }
        }
        assert!(equal < 3);
    }

    #[test]
    fn derive_does_not_advance_parent() {
        let mut a = DetRng::new(5);
        let mut b = DetRng::new(5);
        let _ = a.derive(9);
        assert_eq!(a.unit().to_bits(), b.unit().to_bits());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            let x = r.uniform(5.0, 9.0);
            assert!((5.0..9.0).contains(&x));
            let i = r.int_range(10, 20);
            assert!((10..=20).contains(&i));
        }
    }

    #[test]
    fn int_range_covers_every_value() {
        let mut r = DetRng::new(31);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.int_range(0, 7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_has_roughly_right_moments() {
        let mut r = DetRng::new(11);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn lognormal_noise_has_mean_about_one() {
        let mut r = DetRng::new(13);
        let n = 50_000;
        let mean = (0..n).map(|_| r.lognormal_noise(0.3)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let mut r = DetRng::new(17);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[r.zipf(10, 1.2) - 1] += 1;
        }
        assert!(counts[0] > counts[4]);
        assert!(counts[0] > counts[9] * 3);
    }

    #[test]
    fn poisson_mean_matches_lambda() {
        let mut r = DetRng::new(19);
        let n = 20_000;
        let mean = (0..n).map(|_| r.poisson(4.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn sample_indices_are_distinct_and_in_range() {
        let mut r = DetRng::new(23);
        let s = r.sample_indices(100, 30);
        assert_eq!(s.len(), 30);
        let mut seen = std::collections::HashSet::new();
        for &i in &s {
            assert!(i < 100);
            assert!(seen.insert(i));
        }
        // Requesting more than n clamps to n.
        assert_eq!(r.sample_indices(5, 50).len(), 5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::new(29);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
