//! Descriptive statistics used throughout the paper's evaluation.
//!
//! The paper reports three families of quality metrics for a cost model:
//!
//! * **Pearson correlation** between predicted cost and actual runtime — the headline
//!   "can the optimizer discriminate between candidate plans" number (e.g. 0.04 for the
//!   default SCOPE cost model, > 0.7 for Cleo).
//! * **Median / 95th-percentile relative error** — `|pred − actual| / actual`, reported
//!   as a percentage (e.g. 258% for the default model, 14% for operator-subgraph).
//! * **Ratio distributions** (`estimated / actual`) — plotted as CDFs in
//!   Figures 1, 11, 12, 13, 15; helpers for those live in [`crate::cdf`].

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation. Returns 0.0 for fewer than two values.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Geometric mean of strictly positive values; non-positive values are skipped.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    let logs: Vec<f64> = xs.iter().filter(|&&x| x > 0.0).map(|x| x.ln()).collect();
    if logs.is_empty() {
        return 0.0;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

/// Quantile with linear interpolation, `q` in `[0, 1]`. Returns 0.0 for empty input.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Pearson correlation coefficient between two equally sized samples.
///
/// Returns 0.0 when either sample has zero variance or the lengths differ/are < 2,
/// which matches how a degenerate cost model (constant predictions) should score.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        let dx = x - mx;
        let dy = y - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Spearman rank correlation — Pearson over ranks. Used as a robustness check of the
/// "can the optimizer order plans correctly" question.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return 0.0;
    }
    let rx = ranks(xs);
    let ry = ranks(ys);
    pearson(&rx, &ry)
}

fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        // average ranks over ties
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0;
        for k in i..=j {
            out[idx[k]] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// Relative error `|pred − actual| / actual` for a single pair, expressed as a
/// percentage. `actual` values ≤ 0 are clamped to a small epsilon (actual runtimes in
/// the telemetry are strictly positive, but guard anyway).
pub fn relative_error_pct(predicted: f64, actual: f64) -> f64 {
    let a = actual.max(1e-9);
    ((predicted - a).abs() / a) * 100.0
}

/// Median relative error (%) over paired predictions/actuals — the paper's
/// "median error" column (Tables 1, 4, 5, 6, 7, 8).
pub fn median_error_pct(predicted: &[f64], actual: &[f64]) -> f64 {
    let errs: Vec<f64> = predicted
        .iter()
        .zip(actual.iter())
        .map(|(&p, &a)| relative_error_pct(p, a))
        .collect();
    median(&errs)
}

/// Percentile relative error (%) — e.g. `q = 0.95` for the paper's 95%ile error column.
pub fn percentile_error_pct(predicted: &[f64], actual: &[f64], q: f64) -> f64 {
    let errs: Vec<f64> = predicted
        .iter()
        .zip(actual.iter())
        .map(|(&p, &a)| relative_error_pct(p, a))
        .collect();
    quantile(&errs, q)
}

/// Ratios `predicted / actual`, the x-axis of the paper's accuracy CDF plots.
pub fn ratios(predicted: &[f64], actual: &[f64]) -> Vec<f64> {
    predicted
        .iter()
        .zip(actual.iter())
        .map(|(&p, &a)| (p.max(1e-9)) / (a.max(1e-9)))
        .collect()
}

/// Summary of a cost model's prediction quality against actual runtimes.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracySummary {
    /// Number of (prediction, actual) pairs evaluated.
    pub count: usize,
    /// Pearson correlation between predictions and actuals.
    pub pearson: f64,
    /// Spearman rank correlation.
    pub spearman: f64,
    /// Median relative error, in percent.
    pub median_error_pct: f64,
    /// 95th percentile relative error, in percent.
    pub p95_error_pct: f64,
    /// Geometric mean of predicted/actual ratios (1.0 = unbiased).
    pub ratio_geomean: f64,
}

impl AccuracySummary {
    /// Compute the summary from paired predictions and actuals.
    pub fn compute(predicted: &[f64], actual: &[f64]) -> AccuracySummary {
        AccuracySummary {
            count: predicted.len().min(actual.len()),
            pearson: pearson(predicted, actual),
            spearman: spearman(predicted, actual),
            median_error_pct: median_error_pct(predicted, actual),
            p95_error_pct: percentile_error_pct(predicted, actual, 0.95),
            ratio_geomean: geometric_mean(&ratios(predicted, actual)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0, 6.0]), 4.0);
        assert!(std_dev(&[1.0]).abs() < 1e-12);
        let s = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [2.0, 4.0, 6.0, 8.0, 10.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson(&[1.0, 2.0], &[1.0]), 0.0);
        assert_eq!(pearson(&[1.0], &[1.0]), 0.0);
        // Zero variance in one variable → 0 by convention.
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn spearman_is_rank_based() {
        // A monotone but non-linear relationship has Spearman 1.0.
        let xs: [f64; 5] = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|x| x.exp()).collect();
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &ys) < 0.95);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = [1.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 1.0, 2.0, 3.0];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn relative_errors() {
        assert!((relative_error_pct(150.0, 100.0) - 50.0).abs() < 1e-9);
        assert!((relative_error_pct(50.0, 100.0) - 50.0).abs() < 1e-9);
        let pred = [110.0, 90.0, 200.0];
        let act = [100.0, 100.0, 100.0];
        assert!((median_error_pct(&pred, &act) - 10.0).abs() < 1e-9);
        assert!(percentile_error_pct(&pred, &act, 0.95) > 80.0);
    }

    #[test]
    fn ratio_helpers() {
        let r = ratios(&[200.0, 50.0], &[100.0, 100.0]);
        assert!((r[0] - 2.0).abs() < 1e-12);
        assert!((r[1] - 0.5).abs() < 1e-12);
        assert!((geometric_mean(&r) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_summary_perfect_predictions() {
        let actual = [10.0, 20.0, 30.0, 40.0];
        let s = AccuracySummary::compute(&actual, &actual);
        assert_eq!(s.count, 4);
        assert!((s.pearson - 1.0).abs() < 1e-12);
        assert!(s.median_error_pct < 1e-9);
        assert!((s.ratio_geomean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn geometric_mean_skips_nonpositive() {
        assert!((geometric_mean(&[1.0, 4.0, -3.0, 0.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[-1.0, 0.0]), 0.0);
    }
}
