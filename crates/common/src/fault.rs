//! Seeded, deterministic fault injection for the serving and feedback stack.
//!
//! A [`FaultPlan`] is a *schedule* of injectable faults: whether a fault fires
//! at a given injection site is a pure function of `(seed, site, index)`, where
//! `index` is a deterministic counter owned by the site (a pool task's
//! submission sequence, a telemetry record's absolute index, an
//! `(epoch, cluster)` pair).  Because the decision never consults wall clocks,
//! thread ids, or interleavings, the same plan injects the same faults for one
//! worker thread or N — which is what makes chaos tests reproducible and lets
//! determinism suites pin "quarantine set is bit-identical 1 vs N threads
//! under a fixed fault seed".
//!
//! Plans are threaded through the production code as `Option<Arc<FaultPlan>>`:
//! the disabled path costs one pointer-nullness branch per site, and a `None`
//! plan is bit-identical to a plan whose rates are all zero (pinned by the
//! chaos tests).
//!
//! Each decision window is `after <= index < horizon`.  The `horizon` bound is
//! what makes recovery measurable: after the last scheduled fault the system
//! must return to fault-free behavior, and a bench can assert goodput
//! recovers.  The `after` bound lets a test target a specific victim (e.g.
//! "only the publish of version 2 regresses").

use std::sync::Arc;

/// Injection sites a [`FaultPlan`] can schedule faults at.
///
/// Each site hashes under its own salt, so the same index at two sites makes
/// independent decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Panic the serving-pool worker executing a task (index: task sequence).
    WorkerPanic,
    /// Stall the worker before it executes a task (index: task sequence).
    WorkerStall,
    /// Poison one telemetry record so it fails to parse
    /// (index: absolute record number, 1-based).
    PoisonRecord,
    /// Panic one shard's slice of a fleet epoch
    /// (index: `epoch << 8 | cluster`).
    ShardRoundPanic,
    /// Corrupt one shard's sub-epoch delta so the round errors
    /// (index: `epoch << 8 | cluster`).
    CorruptDelta,
    /// Inflate the measured post-publish live error of one published version
    /// (index: `version << 8 | cluster`).
    RegressingPublish,
}

impl FaultSite {
    /// Per-site hash salt (arbitrary odd constants).
    fn salt(self) -> u64 {
        match self {
            FaultSite::WorkerPanic => 0x9E37_79B9_7F4A_7C15,
            FaultSite::WorkerStall => 0xC2B2_AE3D_27D4_EB4F,
            FaultSite::PoisonRecord => 0x1656_67B1_9E37_79F9,
            FaultSite::ShardRoundPanic => 0xD6E8_FEB8_6659_FD93,
            FaultSite::CorruptDelta => 0xA24B_AED4_963E_E407,
            FaultSite::RegressingPublish => 0x8EBC_6AF0_9C88_C6E3,
        }
    }
}

/// A deterministic schedule of injectable faults (see the module docs).
///
/// All fields are public so tests and benches can describe exactly the
/// scenario they need; [`FaultPlan::chaos`] is the standard mixed plan the
/// chaos suite and `BENCH_chaos.json` use.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed all per-site decisions derive from.
    pub seed: u64,
    /// Probability a pool task's executing worker panics.
    pub worker_panic_rate: f64,
    /// Probability a pool task's executing worker stalls first.
    pub worker_stall_rate: f64,
    /// How long a stalled worker sleeps, in milliseconds.
    pub stall_millis: u64,
    /// Probability a telemetry record is poisoned (fails to parse).
    pub poison_record_rate: f64,
    /// Probability one shard's epoch round panics.
    pub shard_round_panic_rate: f64,
    /// Probability one shard's delta round is corrupted.
    pub corrupt_delta_rate: f64,
    /// Probability a published version's measured live error regresses.
    pub regressing_publish_rate: f64,
    /// Multiplier applied to the measured live error when
    /// [`FaultSite::RegressingPublish`] fires.
    pub regression_multiplier: f64,
    /// No fault fires at an index below this bound (default 0).
    pub after: u64,
    /// No fault fires at an index at or past this bound — the scheduled
    /// faults run out, and the system must recover.
    pub horizon: u64,
}

impl FaultPlan {
    /// A plan that never fires (all rates zero).  Behaviorally identical to
    /// passing no plan at all — pinned by the chaos tests.
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            worker_panic_rate: 0.0,
            worker_stall_rate: 0.0,
            stall_millis: 0,
            poison_record_rate: 0.0,
            shard_round_panic_rate: 0.0,
            corrupt_delta_rate: 0.0,
            regressing_publish_rate: 0.0,
            regression_multiplier: 1.0,
            after: 0,
            horizon: u64::MAX,
        }
    }

    /// The standard mixed chaos plan used by the chaos suite and bench:
    /// occasional worker panics and stalls, a few poisoned records, one shard
    /// round in ~four panicking, all within the given horizon.
    pub fn chaos(seed: u64, horizon: u64) -> Self {
        FaultPlan {
            seed,
            worker_panic_rate: 0.15,
            worker_stall_rate: 0.10,
            stall_millis: 2,
            poison_record_rate: 0.05,
            shard_round_panic_rate: 0.25,
            corrupt_delta_rate: 0.25,
            regressing_publish_rate: 0.0,
            regression_multiplier: 10.0,
            after: 0,
            horizon,
        }
    }

    /// Convenience: wrap in the `Option<Arc<..>>` shape the seams thread.
    pub fn handle(self) -> Option<Arc<FaultPlan>> {
        Some(Arc::new(self))
    }

    /// The per-site firing probability.
    fn rate(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::WorkerPanic => self.worker_panic_rate,
            FaultSite::WorkerStall => self.worker_stall_rate,
            FaultSite::PoisonRecord => self.poison_record_rate,
            FaultSite::ShardRoundPanic => self.shard_round_panic_rate,
            FaultSite::CorruptDelta => self.corrupt_delta_rate,
            FaultSite::RegressingPublish => self.regressing_publish_rate,
        }
    }

    /// The unit-interval draw for `(site, index)` — a pure function of the
    /// plan seed, so every thread count sees the same schedule.
    fn unit(&self, site: FaultSite, index: u64) -> f64 {
        // splitmix64 finalizer over (seed ⊕ salt) advanced by the index.
        let mut z = self
            .seed
            .wrapping_add(site.salt())
            .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Whether the fault at `site` fires for deterministic `index`.
    pub fn fires(&self, site: FaultSite, index: u64) -> bool {
        if index < self.after || index >= self.horizon {
            return false;
        }
        self.unit(site, index) < self.rate(site)
    }

    /// Milliseconds a worker stalls before executing task `index`
    /// (0 = no stall scheduled).
    pub fn stall_millis(&self, index: u64) -> u64 {
        if self.fires(FaultSite::WorkerStall, index) {
            self.stall_millis
        } else {
            0
        }
    }

    /// Multiplier applied to a measured live error for the publish at
    /// `index` (1.0 = no regression scheduled).
    pub fn error_multiplier(&self, index: u64) -> f64 {
        if self.fires(FaultSite::RegressingPublish, index) {
            self.regression_multiplier
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_and_windowed() {
        let plan = FaultPlan {
            worker_panic_rate: 0.5,
            after: 10,
            horizon: 100,
            ..FaultPlan::quiet(7)
        };
        // Pure: the same (site, index) always decides the same way.
        for i in 0..200u64 {
            assert_eq!(
                plan.fires(FaultSite::WorkerPanic, i),
                plan.fires(FaultSite::WorkerPanic, i)
            );
        }
        // Windowed: nothing before `after` or at/past the horizon.
        assert!((0..10).all(|i| !plan.fires(FaultSite::WorkerPanic, i)));
        assert!((100..200).all(|i| !plan.fires(FaultSite::WorkerPanic, i)));
        // At a 0.5 rate, something inside the window does fire.
        assert!((10..100).any(|i| plan.fires(FaultSite::WorkerPanic, i)));
        // Sites decide independently: the stall schedule differs from panics.
        let stalls = FaultPlan {
            worker_stall_rate: 0.5,
            stall_millis: 3,
            after: 10,
            horizon: 100,
            ..FaultPlan::quiet(7)
        };
        assert!((10..100).any(|i| {
            plan.fires(FaultSite::WorkerPanic, i) != stalls.fires(FaultSite::WorkerStall, i)
        }));
        assert!((10..100).any(|i| stalls.stall_millis(i) == 3));
    }

    #[test]
    fn quiet_plans_never_fire_and_seeds_differ() {
        let quiet = FaultPlan::quiet(1);
        for i in 0..100u64 {
            assert!(!quiet.fires(FaultSite::WorkerPanic, i));
            assert_eq!(quiet.stall_millis(i), 0);
            assert_eq!(quiet.error_multiplier(i), 1.0);
        }
        let a = FaultPlan::chaos(1, 1000);
        let b = FaultPlan::chaos(2, 1000);
        let schedule = |p: &FaultPlan| -> Vec<bool> {
            (0..1000)
                .map(|i| p.fires(FaultSite::WorkerPanic, i))
                .collect()
        };
        assert_ne!(
            schedule(&a),
            schedule(&b),
            "different seeds, different schedules"
        );
        assert_eq!(schedule(&a), schedule(&a));
    }
}
