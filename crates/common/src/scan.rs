//! SIMD-friendly byte scanning for the telemetry firehose.
//!
//! The streaming NDJSON reader walks gigabytes of line-oriented telemetry, so
//! its inner loops must not inspect bytes one at a time.  [`find_byte`] is a
//! SWAR (SIMD-within-a-register) `memchr`: it scans eight bytes per step with
//! the classic `haszero` bit trick over `u64` words, which LLVM further
//! autovectorises on wide targets — no per-byte branches, no dependencies.
//! [`Lines`] builds on it to split a buffer into `\n`-terminated lines while
//! tracking byte offsets, and the number parsers ([`parse_u64`],
//! [`parse_f64`]) decode ASCII spans in place so the scan loop never
//! allocates.

/// Broadcast a byte into all eight lanes of a `u64`.
#[inline(always)]
const fn broadcast(b: u8) -> u64 {
    u64::from_ne_bytes([b; 8])
}

/// True when any byte of `w` is zero: the classic SWAR `haszero` trick —
/// `(w - 0x0101…) & !w & 0x8080…` sets the high bit of every zero lane.
#[inline(always)]
const fn has_zero_byte(w: u64) -> bool {
    w.wrapping_sub(0x0101_0101_0101_0101) & !w & 0x8080_8080_8080_8080 != 0
}

/// Index of the first occurrence of `needle` in `haystack`, scanning eight
/// bytes per step (word-at-a-time `memchr`).
pub fn find_byte(needle: u8, haystack: &[u8]) -> Option<usize> {
    let pattern = broadcast(needle);
    let mut chunks = haystack.chunks_exact(8);
    let mut offset = 0usize;
    for chunk in chunks.by_ref() {
        // Unaligned little/big-endian-agnostic load: XOR zeroes matching lanes.
        let word = u64::from_ne_bytes(chunk.try_into().expect("8-byte chunk")) ^ pattern;
        if has_zero_byte(word) {
            // A match exists in this word; locate it exactly.
            for (i, &b) in chunk.iter().enumerate() {
                if b == needle {
                    return Some(offset + i);
                }
            }
        }
        offset += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == needle)
        .map(|i| offset + i)
}

/// Iterator over `\n`-separated lines of a buffer, yielding `(line_number,
/// byte_offset, line)` with 1-based line numbers and the line's starting byte
/// offset in the buffer.  The trailing newline is not part of the yielded
/// slice; a final unterminated line is yielded too.
pub struct Lines<'a> {
    buf: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lines<'a> {
    /// Split `buf` into lines.
    pub fn new(buf: &'a [u8]) -> Self {
        Lines {
            buf,
            pos: 0,
            line: 0,
        }
    }
}

impl<'a> Iterator for Lines<'a> {
    type Item = (usize, usize, &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.buf.len() {
            return None;
        }
        let start = self.pos;
        self.line += 1;
        match find_byte(b'\n', &self.buf[start..]) {
            Some(rel) => {
                self.pos = start + rel + 1;
                Some((self.line, start, &self.buf[start..start + rel]))
            }
            None => {
                self.pos = self.buf.len();
                Some((self.line, start, &self.buf[start..]))
            }
        }
    }
}

/// Largest newline-terminated prefix length of `buf[..at]`, i.e. a split point
/// that does not cut a record in half.  Returns 0 when no newline precedes
/// `at` (the chunk is smaller than one record).
pub fn split_at_newline(buf: &[u8], at: usize) -> usize {
    let at = at.min(buf.len());
    match buf[..at].iter().rposition(|&b| b == b'\n') {
        Some(i) => i + 1,
        None => 0,
    }
}

/// Parse an ASCII decimal unsigned integer.  Rejects empty input, non-digits,
/// and overflow.
pub fn parse_u64(bytes: &[u8]) -> Option<u64> {
    if bytes.is_empty() || bytes.len() > 20 {
        return None;
    }
    let mut v: u64 = 0;
    for &b in bytes {
        let d = b.wrapping_sub(b'0');
        if d > 9 {
            return None;
        }
        v = v.checked_mul(10)?.checked_add(d as u64)?;
    }
    Some(v)
}

/// Parse an ASCII floating-point number (the subset `serde_json` emits:
/// optional sign, digits, optional fraction, optional exponent).  Input must
/// be valid UTF-8 by construction (digits, sign, `.`, `e`), so the str
/// round-trip is free.
pub fn parse_f64(bytes: &[u8]) -> Option<f64> {
    if bytes.is_empty() {
        return None;
    }
    // Fast path: pure integers below 2^53 convert exactly without the general
    // float parser.
    if bytes.len() <= 15 && bytes[0] != b'-' {
        let mut all_digits = true;
        let mut v: u64 = 0;
        for &b in bytes {
            let d = b.wrapping_sub(b'0');
            if d > 9 {
                all_digits = false;
                break;
            }
            v = v * 10 + d as u64;
        }
        if all_digits {
            return Some(v as f64);
        }
    }
    std::str::from_utf8(bytes).ok()?.parse::<f64>().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_byte_matches_naive_search() {
        let hay = b"abcdefghijklmnopqrstuvwxyz0123456789";
        for (i, &b) in hay.iter().enumerate() {
            assert_eq!(find_byte(b, hay), Some(i), "byte {}", b as char);
        }
        assert_eq!(find_byte(b'!', hay), None);
        assert_eq!(find_byte(b'a', b""), None);
        // Matches in every alignment and position, including past the first word.
        for n in 0..64usize {
            let mut v = vec![b'x'; n];
            v.push(b'\n');
            v.extend_from_slice(&[b'y'; 7]);
            assert_eq!(find_byte(b'\n', &v), Some(n), "length {n}");
        }
    }

    #[test]
    fn lines_yield_offsets_and_numbers() {
        let buf = b"alpha\nbeta\n\ngamma";
        let got: Vec<(usize, usize, &[u8])> = Lines::new(buf).collect();
        assert_eq!(
            got,
            vec![
                (1, 0, b"alpha".as_slice()),
                (2, 6, b"beta".as_slice()),
                (3, 11, b"".as_slice()),
                (4, 12, b"gamma".as_slice()),
            ]
        );
        assert_eq!(Lines::new(b"").count(), 0);
        // Trailing newline does not produce a phantom empty line.
        assert_eq!(Lines::new(b"a\n").count(), 1);
    }

    #[test]
    fn split_at_newline_never_cuts_a_record() {
        let buf = b"aaaa\nbbbb\ncccc";
        assert_eq!(split_at_newline(buf, 7), 5);
        assert_eq!(split_at_newline(buf, 4), 0);
        assert_eq!(split_at_newline(buf, 5), 5);
        assert_eq!(split_at_newline(buf, 14), 10);
        assert_eq!(split_at_newline(buf, 100), 10);
        assert_eq!(split_at_newline(b"no newline", 5), 0);
    }

    #[test]
    fn parse_u64_rejects_junk() {
        assert_eq!(parse_u64(b"0"), Some(0));
        assert_eq!(parse_u64(b"18446744073709551615"), Some(u64::MAX));
        assert_eq!(parse_u64(b"18446744073709551616"), None);
        assert_eq!(parse_u64(b""), None);
        assert_eq!(parse_u64(b"12a"), None);
        assert_eq!(parse_u64(b"-1"), None);
        assert_eq!(parse_u64(b" 1"), None);
    }

    #[test]
    fn parse_f64_handles_json_number_forms() {
        assert_eq!(parse_f64(b"0"), Some(0.0));
        assert_eq!(parse_f64(b"123456"), Some(123456.0));
        assert_eq!(parse_f64(b"-12.5"), Some(-12.5));
        assert_eq!(parse_f64(b"1.5e300"), Some(1.5e300));
        assert_eq!(
            parse_f64(b"2.2250738585072014e-308"),
            Some(f64::MIN_POSITIVE)
        );
        assert_eq!(parse_f64(b""), None);
        assert_eq!(parse_f64(b"abc"), None);
        // Exact integers stay exact through the fast path.
        assert_eq!(parse_f64(b"9007199254740992"), Some(9007199254740992.0));
    }
}
