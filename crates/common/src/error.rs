//! Shared error type for the workspace.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, CleoError>;

/// Errors produced by the Cleo reproduction crates.
///
/// The variants are intentionally coarse: the library is a research system and the
/// main consumers are the experiment runners, which mostly want a readable message.
#[derive(Debug, Clone, PartialEq)]
pub enum CleoError {
    /// A model was asked to predict before it was trained, or training failed to
    /// produce a usable model.
    ModelNotTrained(String),
    /// The caller supplied inconsistent or empty training data (e.g. feature rows of
    /// different lengths, zero samples).
    InvalidTrainingData(String),
    /// A plan, operator, or catalog object was malformed or referenced a missing id.
    InvalidPlan(String),
    /// A catalog lookup failed (unknown table/column).
    CatalogError(String),
    /// Query optimization could not produce a physical plan.
    OptimizationError(String),
    /// Configuration error (bad parameter value).
    Config(String),
    /// An I/O error while writing experiment output.
    Io(String),
    /// A serving component was unavailable: the worker executing a request
    /// died, a request's deadline expired, or a shard round was lost to an
    /// isolated failure.  The request did not complete; it may be retried.
    Unavailable(String),
    /// A telemetry record failed to parse.  `line` is 1-based; `start..end` is
    /// the byte span of the offending token *within* that line, so tooling can
    /// point at the exact corrupt bytes of a firehose dump.
    Parse {
        line: usize,
        start: usize,
        end: usize,
        msg: String,
    },
}

impl CleoError {
    /// Span-exact parse error for line- or record-oriented inputs: `line` is
    /// the 1-based line/record number (0 = the stream header), `start..end`
    /// the byte span of the offending token *within* that line or record
    /// payload.  The span is never empty — a zero-width error would leave
    /// tooling with nothing to point at, so `end` is clamped to `start + 1`.
    ///
    /// This is the one constructor every spec/wire parser in the workspace
    /// funnels through (telemetry NDJSON + binary, model snapshots, the
    /// scenario DSL), so the span convention cannot drift per format.
    pub fn parse_at(line: usize, start: usize, end: usize, msg: impl Into<String>) -> CleoError {
        CleoError::Parse {
            line,
            start,
            end: end.max(start + 1),
            msg: msg.into(),
        }
    }

    /// The `(line, start, end)` span of a [`CleoError::Parse`], if that is
    /// what this error is — what tests assert span-exactness with.
    pub fn parse_span(&self) -> Option<(usize, usize, usize)> {
        match self {
            CleoError::Parse {
                line, start, end, ..
            } => Some((*line, *start, *end)),
            _ => None,
        }
    }
}

impl fmt::Display for CleoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CleoError::ModelNotTrained(m) => write!(f, "model not trained: {m}"),
            CleoError::InvalidTrainingData(m) => write!(f, "invalid training data: {m}"),
            CleoError::InvalidPlan(m) => write!(f, "invalid plan: {m}"),
            CleoError::CatalogError(m) => write!(f, "catalog error: {m}"),
            CleoError::OptimizationError(m) => write!(f, "optimization error: {m}"),
            CleoError::Config(m) => write!(f, "configuration error: {m}"),
            CleoError::Io(m) => write!(f, "io error: {m}"),
            CleoError::Unavailable(m) => write!(f, "unavailable: {m}"),
            CleoError::Parse {
                line,
                start,
                end,
                msg,
            } => write!(f, "parse error at line {line}, bytes {start}..{end}: {msg}"),
        }
    }
}

impl std::error::Error for CleoError {}

impl From<std::io::Error> for CleoError {
    fn from(e: std::io::Error) -> Self {
        CleoError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_readable() {
        let e = CleoError::ModelNotTrained("operator-subgraph 42".into());
        assert_eq!(e.to_string(), "model not trained: operator-subgraph 42");
        let e = CleoError::InvalidTrainingData("0 samples".into());
        assert!(e.to_string().contains("0 samples"));
        let e = CleoError::CatalogError("unknown table".into());
        assert!(e.to_string().contains("catalog"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: CleoError = io.into();
        assert!(matches!(e, CleoError::Io(_)));
    }

    #[test]
    fn parse_at_clamps_empty_spans_and_exposes_them() {
        let e = CleoError::parse_at(3, 7, 7, "bad token");
        assert_eq!(e.parse_span(), Some((3, 7, 8)));
        let e = CleoError::parse_at(1, 2, 9, "bad token");
        assert_eq!(e.parse_span(), Some((1, 2, 9)));
        assert_eq!(CleoError::Config("x".into()).parse_span(), None);
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(CleoError::Config("x".into()), CleoError::Config("x".into()));
        assert_ne!(CleoError::Config("x".into()), CleoError::Config("y".into()));
    }
}
