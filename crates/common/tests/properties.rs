//! Property-style tests for the statistics, CDF, and hashing primitives.
//!
//! Inputs are generated from the workspace's own [`DetRng`] (the build is
//! offline and dependency-free, so there is no proptest); each test runs the
//! property over many seeded random cases, which keeps failures reproducible.

use cleo_common::cdf::RatioCdf;
use cleo_common::hash::{combine_ordered, combine_unordered, hash_str};
use cleo_common::rng::DetRng;
use cleo_common::stats;

const CASES: usize = 64;

fn finite_vec(rng: &mut DetRng, max_len: usize) -> Vec<f64> {
    let len = rng.index(max_len.saturating_sub(1)) + 1;
    (0..len).map(|_| rng.uniform(0.001, 1e9)).collect()
}

fn ident(rng: &mut DetRng) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
    let len = rng.index(24) + 1;
    (0..len)
        .map(|_| ALPHABET[rng.index(ALPHABET.len())] as char)
        .collect()
}

#[test]
fn pearson_is_bounded_and_symmetric() {
    let mut rng = DetRng::new(101);
    for _ in 0..CASES {
        let xs = finite_vec(&mut rng, 64);
        let ys = finite_vec(&mut rng, 64);
        let n = xs.len().min(ys.len());
        let a = &xs[..n];
        let b = &ys[..n];
        let r = stats::pearson(a, b);
        assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        assert!((r - stats::pearson(b, a)).abs() < 1e-9);
    }
}

#[test]
fn pearson_of_a_series_with_itself_is_one_or_zero() {
    let mut rng = DetRng::new(102);
    for _ in 0..CASES {
        let xs = finite_vec(&mut rng, 64);
        let r = stats::pearson(&xs, &xs);
        // 1.0 for non-constant series, 0.0 (by convention) for constant/short ones.
        assert!((r - 1.0).abs() < 1e-6 || r == 0.0);
    }
}

#[test]
fn quantiles_stay_within_range_and_are_monotone() {
    let mut rng = DetRng::new(103);
    for _ in 0..CASES {
        let xs = finite_vec(&mut rng, 128);
        let q1 = rng.unit();
        let q2 = rng.unit();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let v1 = stats::quantile(&xs, q1.min(q2));
        let v2 = stats::quantile(&xs, q1.max(q2));
        assert!(v1 >= lo - 1e-9 && v2 <= hi + 1e-9);
        assert!(v1 <= v2 + 1e-9);
    }
}

#[test]
fn relative_errors_are_nonnegative_and_zero_for_perfect() {
    let mut rng = DetRng::new(104);
    for _ in 0..CASES {
        let xs = finite_vec(&mut rng, 64);
        assert!(stats::median_error_pct(&xs, &xs) < 1e-9);
        let doubled: Vec<f64> = xs.iter().map(|x| x * 2.0).collect();
        let err = stats::median_error_pct(&doubled, &xs);
        assert!((err - 100.0).abs() < 1e-6);
    }
}

#[test]
fn ratio_cdf_is_monotone_and_normalised() {
    let mut rng = DetRng::new(105);
    for _ in 0..CASES {
        let preds = finite_vec(&mut rng, 64);
        let acts = finite_vec(&mut rng, 64);
        let n = preds.len().min(acts.len());
        let cdf = RatioCdf::from_pairs(&preds[..n], &acts[..n]);
        let series = cdf.series(1e-3, 1e3, 20);
        for w in series.windows(2) {
            assert!(w[1].fraction >= w[0].fraction);
        }
        let total = cdf.under_estimation_fraction() + cdf.over_estimation_fraction();
        assert!(total <= 1.0 + 1e-9);
        assert!(cdf.fraction_within_factor(1e12) >= 1.0 - 1e-9);
    }
}

#[test]
fn hashing_is_deterministic_and_label_sensitive() {
    let mut rng = DetRng::new(106);
    for _ in 0..CASES {
        let s = ident(&mut rng);
        let t = ident(&mut rng);
        assert_eq!(hash_str(&s), hash_str(&s));
        if s != t {
            assert_ne!(hash_str(&s), hash_str(&t));
        }
    }
}

#[test]
fn unordered_combination_is_permutation_invariant() {
    let mut rng = DetRng::new(107);
    for _ in 0..CASES {
        let len = rng.index(7) + 1;
        let children: Vec<u64> = (0..len).map(|_| rng.next_u64()).collect();
        let mut reversed = children.clone();
        reversed.reverse();
        assert_eq!(
            combine_unordered("agg", &children),
            combine_unordered("agg", &reversed)
        );
        // Ordered combination distinguishes order whenever there are >= 2 distinct children.
        if children.len() >= 2 && children[0] != *children.last().unwrap() {
            assert_ne!(
                combine_ordered("agg", &children),
                combine_ordered("agg", &reversed)
            );
        }
    }
}
