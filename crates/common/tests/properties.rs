//! Property-based tests for the statistics, CDF, and hashing primitives.

use cleo_common::cdf::RatioCdf;
use cleo_common::hash::{combine_ordered, combine_unordered, hash_str};
use cleo_common::stats;
use proptest::prelude::*;

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.001f64..1e9, 1..max_len)
}

proptest! {
    #[test]
    fn pearson_is_bounded_and_symmetric(xs in finite_vec(64), ys in finite_vec(64)) {
        let n = xs.len().min(ys.len());
        let a = &xs[..n];
        let b = &ys[..n];
        let r = stats::pearson(a, b);
        prop_assert!(r >= -1.0 - 1e-9 && r <= 1.0 + 1e-9);
        prop_assert!((r - stats::pearson(b, a)).abs() < 1e-9);
    }

    #[test]
    fn pearson_of_a_series_with_itself_is_one_or_zero(xs in finite_vec(64)) {
        let r = stats::pearson(&xs, &xs);
        // 1.0 for non-constant series, 0.0 (by convention) for constant/short ones.
        prop_assert!((r - 1.0).abs() < 1e-6 || r == 0.0);
    }

    #[test]
    fn quantiles_stay_within_range_and_are_monotone(xs in finite_vec(128), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let v1 = stats::quantile(&xs, q1.min(q2));
        let v2 = stats::quantile(&xs, q1.max(q2));
        prop_assert!(v1 >= lo - 1e-9 && v2 <= hi + 1e-9);
        prop_assert!(v1 <= v2 + 1e-9);
    }

    #[test]
    fn relative_errors_are_nonnegative_and_zero_for_perfect(xs in finite_vec(64)) {
        prop_assert!(stats::median_error_pct(&xs, &xs) < 1e-9);
        let doubled: Vec<f64> = xs.iter().map(|x| x * 2.0).collect();
        let err = stats::median_error_pct(&doubled, &xs);
        prop_assert!((err - 100.0).abs() < 1e-6);
    }

    #[test]
    fn ratio_cdf_is_monotone_and_normalised(preds in finite_vec(64), acts in finite_vec(64)) {
        let n = preds.len().min(acts.len());
        let cdf = RatioCdf::from_pairs(&preds[..n], &acts[..n]);
        let series = cdf.series(1e-3, 1e3, 20);
        for w in series.windows(2) {
            prop_assert!(w[1].fraction >= w[0].fraction);
        }
        let total = cdf.under_estimation_fraction() + cdf.over_estimation_fraction();
        prop_assert!(total <= 1.0 + 1e-9);
        prop_assert!(cdf.fraction_within_factor(1e12) >= 1.0 - 1e-9);
    }

    #[test]
    fn hashing_is_deterministic_and_label_sensitive(s in "[a-zA-Z0-9_]{1,24}", t in "[a-zA-Z0-9_]{1,24}") {
        prop_assert_eq!(hash_str(&s), hash_str(&s));
        if s != t {
            prop_assert_ne!(hash_str(&s), hash_str(&t));
        }
    }

    #[test]
    fn unordered_combination_is_permutation_invariant(children in prop::collection::vec(any::<u64>(), 1..8)) {
        let mut reversed = children.clone();
        reversed.reverse();
        prop_assert_eq!(
            combine_unordered("agg", &children),
            combine_unordered("agg", &reversed)
        );
        // Ordered combination distinguishes order whenever there are >= 2 distinct children.
        if children.len() >= 2 && children[0] != *children.last().unwrap() {
            prop_assert_ne!(
                combine_ordered("agg", &children),
                combine_ordered("agg", &reversed)
            );
        }
    }
}
