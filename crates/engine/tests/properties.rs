//! Property-style tests for the engine: cardinality derivation, stage formation, and
//! the execution simulator over randomly shaped (but well-formed) plans.
//!
//! Inputs are generated from the workspace's own [`DetRng`] (the build is
//! offline and dependency-free, so there is no proptest).

use cleo_common::rng::DetRng;
use cleo_engine::catalog::{Catalog, ColumnDef, TableDef};
use cleo_engine::exec::{Simulator, SimulatorConfig};
use cleo_engine::logical::LogicalNode;
use cleo_engine::physical::{JobMeta, PhysicalNode, PhysicalOpKind, PhysicalPlan};
use cleo_engine::stage::build_stage_graph;
use cleo_engine::types::{ClusterId, DayIndex, JobId, OpStats};

const CASES: usize = 32;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(TableDef::new(
        "t0",
        vec![
            ColumnDef::new("k", 8.0, 0.1),
            ColumnDef::new("v", 40.0, 0.8),
        ],
        1e7,
        32,
    ));
    c.add_table(TableDef::new(
        "t1",
        vec![
            ColumnDef::new("k", 8.0, 1.0),
            ColumnDef::new("d", 16.0, 0.2),
        ],
        1e5,
        4,
    ));
    c
}

/// A random logical plan: a chain of unary operators over a scan, optionally joined
/// with a second scan, optionally aggregated.
fn random_logical_plan(rng: &mut DetRng) -> LogicalNode {
    let n_filters = rng.index(4);
    let join = rng.chance(0.5);
    let aggregate = rng.chance(0.5);
    let group_fraction = rng.uniform(0.0001, 0.5);
    let mut plan = LogicalNode::get("t0");
    for i in 0..n_filters {
        let est = rng.uniform(0.0001, 1.0);
        let act = rng.uniform(0.0001, 1.0);
        plan = plan.filter(format!("p{i}"), est, act);
    }
    if join {
        plan = plan.join(LogicalNode::get("t1"), vec!["k".into()], 1.0, 0.7);
    }
    if aggregate {
        plan = plan.aggregate(vec!["k".into()], group_fraction, group_fraction * 0.5);
    }
    plan.output("sink")
}

fn meta(job: u64) -> JobMeta {
    JobMeta {
        id: JobId(job),
        cluster: ClusterId(0),
        template: None,
        name: format!("prop{job}"),
        normalized_inputs: vec!["t0".into()],
        params: vec![0.5],
        day: DayIndex(0),
        recurring: true,
    }
}

/// A random linear physical pipeline with an exchange in the middle.
fn random_physical_plan(rng: &mut DetRng) -> PhysicalPlan {
    let p1 = rng.index(63) + 1;
    let p2 = rng.index(255) + 1;
    let rows = rng.uniform(1e3, 1e8);
    let job = rng.int_range(1, 999);
    let stats = |r: f64| OpStats {
        input_cardinality: r,
        base_cardinality: r,
        output_cardinality: r,
        avg_row_bytes: 50.0,
    };
    let mut extract = PhysicalNode::new(PhysicalOpKind::Extract, "t0", vec![]);
    extract.est = stats(rows);
    extract.act = stats(rows);
    extract.partition_count = p1;
    let mut filter = PhysicalNode::new(PhysicalOpKind::Filter, "p", vec![extract]);
    filter.est = stats(rows * 0.3);
    filter.act = stats(rows * 0.2);
    filter.partition_count = p1;
    let mut exch = PhysicalNode::new(PhysicalOpKind::Exchange, "k", vec![filter]);
    exch.est = stats(rows * 0.3);
    exch.act = stats(rows * 0.2);
    exch.partition_count = p2;
    let mut agg = PhysicalNode::new(PhysicalOpKind::HashAggregate, "k", vec![exch]);
    agg.est = stats(rows * 0.01);
    agg.act = stats(rows * 0.005);
    agg.partition_count = p2;
    let mut out = PhysicalNode::new(PhysicalOpKind::Output, "sink", vec![agg]);
    out.est = stats(rows * 0.01);
    out.act = stats(rows * 0.005);
    out.partition_count = p2;
    PhysicalPlan::new(meta(job), out)
}

#[test]
fn derived_cardinalities_are_positive_and_bounded() {
    let mut rng = DetRng::new(301);
    for _ in 0..CASES {
        let plan = random_logical_plan(&mut rng);
        let cards = plan.derive_cards(&catalog()).unwrap();
        assert!(cards.estimated.output_cardinality >= 1.0);
        assert!(cards.actual.output_cardinality >= 1.0);
        assert!(cards.estimated.avg_row_bytes >= 1.0);
        // Base cardinality equals the sum of the scanned tables in both worlds.
        assert!((cards.estimated.base_cardinality - cards.actual.base_cardinality).abs() < 1e-6);
        // No single-output operator chain can exceed the cross-product bound here:
        // output <= base * max join fanout (1.0) for this plan family.
        assert!(cards.actual.output_cardinality <= cards.actual.base_cardinality + 1.0);
    }
}

#[test]
fn stage_graphs_partition_every_operator_exactly_once() {
    let mut rng = DetRng::new(302);
    for _ in 0..CASES {
        let plan = random_physical_plan(&mut rng);
        let graph = build_stage_graph(&plan);
        // Every operator appears in exactly one stage.
        let mut seen = std::collections::HashSet::new();
        for stage in &graph.stages {
            for op in &stage.op_ids {
                assert!(seen.insert(*op), "operator listed in two stages");
            }
        }
        assert_eq!(seen.len(), plan.op_count());
        // Stage partition counts match their partitioning operator.
        for stage in &graph.stages {
            let root = plan.root.find(stage.partitioning_op).unwrap();
            assert_eq!(stage.partition_count, root.partition_count);
            assert!(root.kind.is_partitioning());
        }
    }
}

#[test]
fn simulator_latencies_are_positive_finite_and_deterministic() {
    let mut rng = DetRng::new(303);
    for _ in 0..CASES {
        let plan = random_physical_plan(&mut rng);
        let sim = Simulator::new(SimulatorConfig::default());
        let a = sim.run(&plan);
        let b = sim.run(&plan);
        assert_eq!(&a, &b);
        assert!(a.job_latency.is_finite() && a.job_latency > 0.0);
        assert!(a.total_cpu_seconds >= a.job_latency - 1e-9);
        assert_eq!(a.operator_runs.len(), plan.op_count());
        for run in a.operator_runs.values() {
            assert!(run.exclusive_seconds.is_finite() && run.exclusive_seconds > 0.0);
        }
    }
}

#[test]
fn noiseless_latency_decreases_when_rows_shrink() {
    let mut rng = DetRng::new(304);
    for _ in 0..CASES {
        let rows = rng.uniform(1e5, 1e8);
        let sim = Simulator::new(SimulatorConfig::noiseless(1));
        let build = |r: f64| {
            let stats = |x: f64| OpStats {
                input_cardinality: x,
                base_cardinality: x,
                output_cardinality: x,
                avg_row_bytes: 50.0,
            };
            let mut extract = PhysicalNode::new(PhysicalOpKind::Extract, "t0", vec![]);
            extract.est = stats(r);
            extract.act = stats(r);
            extract.partition_count = 16;
            let mut out = PhysicalNode::new(PhysicalOpKind::Output, "s", vec![extract]);
            out.est = stats(r);
            out.act = stats(r);
            out.partition_count = 16;
            PhysicalPlan::new(meta(1), out)
        };
        let big = sim.run(&build(rows));
        let small = sim.run(&build(rows / 10.0));
        assert!(small.job_latency <= big.job_latency + 1e-9);
    }
}
