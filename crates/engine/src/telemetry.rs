//! Telemetry: the training data Cleo learns from.
//!
//! SCOPE is "already instrumented to collect logs of query plan statistics such as
//! cardinalities, estimated costs, as well as runtime traces" (Section 5.1).  In the
//! reproduction, telemetry couples the optimized [`PhysicalPlan`] (which carries the
//! compile-time estimated statistics — the features) with the simulator's [`JobRun`]
//! (which carries per-operator exclusive latencies — the labels).

use crate::exec::JobRun;
use crate::physical::{PhysicalNode, PhysicalPlan};
use crate::types::{ClusterId, DayIndex, JobId, OpId, Seconds};

/// Which feedback epoch and model version produced a telemetry record.
///
/// The continuous loop of Section 5.1 serves every job from whichever model
/// version is current; stamping that provenance into the telemetry lets later
/// epochs attribute each observation to the model that planned it (and lets
/// drift analyses separate "the workload changed" from "the model changed").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModelProvenance {
    /// Feedback-loop epoch during which the job ran (0 = outside any loop).
    pub epoch: u32,
    /// Registry version of the cost model that optimized the plan
    /// (0 = no learned model / the hand-written fallback).
    pub model_version: u64,
    /// Cluster whose registry shard served the model.  Under cross-cluster
    /// fallback routing this can differ from the job's own cluster (a cold
    /// shard borrows a donor cluster's model); `None` means the model came from
    /// an unsharded provider or the version-0 fallback.
    pub model_cluster: Option<ClusterId>,
    /// Sub-epoch delta lineage: when the serving model version was published
    /// as a single-signature delta, the incumbent version it was applied over
    /// (`None` for full-epoch versions and the fallback).  Lets later analyses
    /// attribute an observation to "v4 = v3 + delta" rather than a full
    /// retrain.
    pub delta_base: Option<u64>,
}

/// The record of one executed job: its plan and its measured runtimes.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTelemetry {
    /// The plan that was executed (estimated statistics included).
    pub plan: PhysicalPlan,
    /// The measured execution outcome.
    pub run: JobRun,
    /// Epoch/model-version stamp of the run.
    pub provenance: ModelProvenance,
}

impl JobTelemetry {
    /// Record a run with no feedback-loop provenance (epoch 0, version 0).
    pub fn new(plan: PhysicalPlan, run: JobRun) -> Self {
        JobTelemetry {
            plan,
            run,
            provenance: ModelProvenance::default(),
        }
    }

    /// Record a run stamped with the epoch and model version that produced it.
    pub fn with_provenance(plan: PhysicalPlan, run: JobRun, provenance: ModelProvenance) -> Self {
        JobTelemetry {
            plan,
            run,
            provenance,
        }
    }
    /// Job id convenience accessor.
    pub fn job_id(&self) -> JobId {
        self.plan.meta.id
    }

    /// Day the job ran.
    pub fn day(&self) -> DayIndex {
        self.plan.meta.day
    }

    /// Cluster the job ran on.
    pub fn cluster(&self) -> ClusterId {
        self.plan.meta.cluster
    }

    /// True when the job was recurring.
    pub fn is_recurring(&self) -> bool {
        self.plan.meta.recurring
    }

    /// Iterate over `(operator node, exclusive latency)` pairs for every operator with
    /// a measured latency.
    pub fn operator_samples(&self) -> Vec<(&PhysicalNode, Seconds)> {
        let mut out = Vec::with_capacity(self.plan.op_count());
        self.plan.root.visit(&mut |node| {
            if let Some(latency) = self.run.exclusive(node.id) {
                out.push((node, latency));
            }
        });
        out
    }

    /// Exclusive latency of one operator, if recorded.
    pub fn exclusive(&self, op: OpId) -> Option<Seconds> {
        self.run.exclusive(op)
    }
}

/// A collection of executed jobs — one cluster-day (or several) of telemetry.
///
/// The log tracks whether its jobs arrived in non-decreasing day order (the normal
/// case: telemetry is appended as days run).  Day-sorted logs slice training
/// windows with two binary searches and a sub-range clone instead of re-scanning
/// every record, and serve as the feedback loop's bounded sliding window via
/// [`TelemetryLog::drain_window`] / [`TelemetryLog::retain_recent_days`].
#[derive(Debug, Clone)]
pub struct TelemetryLog {
    /// Executed jobs in submission order.  Private so the day-order tracking
    /// cannot be invalidated from outside: append via [`TelemetryLog::push`] /
    /// [`TelemetryLog::extend`], read via [`TelemetryLog::jobs`], and rebuild
    /// after bulk edits with [`TelemetryLog::into_jobs`] +
    /// [`TelemetryLog::from_jobs`] (which re-detects the order).
    jobs: Vec<JobTelemetry>,
    /// True while `jobs` is non-decreasing in day (maintained on append).
    day_sorted: bool,
}

impl Default for TelemetryLog {
    fn default() -> Self {
        TelemetryLog {
            jobs: Vec::new(),
            day_sorted: true,
        }
    }
}

impl PartialEq for TelemetryLog {
    fn eq(&self, other: &Self) -> bool {
        // `day_sorted` is a derived fast-path hint, not data.
        self.jobs == other.jobs
    }
}

impl TelemetryLog {
    /// Create an empty log.
    pub fn new() -> Self {
        TelemetryLog::default()
    }

    /// Build a log from jobs, detecting day order once.
    pub fn from_jobs(jobs: Vec<JobTelemetry>) -> Self {
        let day_sorted = jobs.windows(2).all(|w| w[0].day() <= w[1].day());
        TelemetryLog { jobs, day_sorted }
    }

    /// The recorded jobs, in submission order.
    pub fn jobs(&self) -> &[JobTelemetry] {
        &self.jobs
    }

    /// Consume the log into its jobs (pair with [`TelemetryLog::from_jobs`] to
    /// rebuild after bulk edits; the rebuild re-detects day order).
    pub fn into_jobs(self) -> Vec<JobTelemetry> {
        self.jobs
    }

    /// Append one executed job.
    pub fn push(&mut self, job: JobTelemetry) {
        if let Some(last) = self.jobs.last() {
            self.day_sorted &= last.day() <= job.day();
        }
        self.jobs.push(job);
    }

    /// Merge another log into this one.
    pub fn extend(&mut self, other: TelemetryLog) {
        match (self.jobs.last(), other.jobs.first()) {
            (Some(a), Some(b)) => {
                self.day_sorted = self.day_sorted && other.day_sorted && a.day() <= b.day();
            }
            _ => self.day_sorted &= other.day_sorted,
        }
        self.jobs.extend(other.jobs);
    }

    /// Number of recorded jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when no jobs are recorded.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// True while the recorded jobs are in non-decreasing day order (the
    /// precondition for the binary-search window slicing).
    pub fn is_day_sorted(&self) -> bool {
        self.day_sorted
    }

    /// Debug-build guard for the binary-search paths: `jobs` is private and the
    /// `day_sorted` flag is maintained by every mutating method, so this should
    /// never fire — it exists to catch a future method forgetting the flag.
    fn debug_check_day_sorted(&self) {
        debug_assert!(
            self.jobs.windows(2).all(|w| w[0].day() <= w[1].day()),
            "TelemetryLog.jobs was reordered directly; day_sorted flag is stale"
        );
    }

    /// Total number of operator samples across all jobs.
    pub fn operator_sample_count(&self) -> usize {
        self.jobs.iter().map(|j| j.run.operator_runs.len()).sum()
    }

    /// Evict the oldest jobs until at most `max_jobs` remain, returning the
    /// evicted records (oldest first).  This is the feedback loop's sliding
    /// window bound: O(evicted) plus one memmove, no re-scan of the survivors.
    pub fn drain_window(&mut self, max_jobs: usize) -> Vec<JobTelemetry> {
        let excess = self.jobs.len().saturating_sub(max_jobs);
        // Dropping a prefix cannot break non-decreasing day order.
        self.jobs.drain(..excess).collect()
    }

    /// Keep only the `max_days`-day window ending at the newest recorded day
    /// (`0` is treated as `1`: the newest day alone), returning the evicted
    /// records (oldest first).  Day-sorted logs locate the cut with a binary
    /// search.
    pub fn retain_recent_days(&mut self, max_days: u32) -> Vec<JobTelemetry> {
        // Day-sorted logs read the newest day off the last record; only the
        // unsorted fallback needs a scan.
        let newest = if self.day_sorted {
            self.jobs.last().map(|j| j.day())
        } else {
            self.jobs.iter().map(|j| j.day()).max()
        };
        let Some(newest) = newest else {
            return Vec::new();
        };
        let cutoff = DayIndex(newest.0.saturating_sub(max_days.saturating_sub(1)));
        if self.day_sorted {
            self.debug_check_day_sorted();
            let start = self.jobs.partition_point(|j| j.day() < cutoff);
            self.jobs.drain(..start).collect()
        } else {
            let (evicted, kept): (Vec<_>, Vec<_>) = std::mem::take(&mut self.jobs)
                .into_iter()
                .partition(|j| j.day() < cutoff);
            self.jobs = kept;
            self.day_sorted = self.jobs.windows(2).all(|w| w[0].day() <= w[1].day());
            evicted
        }
    }

    /// Keep only jobs that ran within `[from, to]` (inclusive) days.
    ///
    /// Day-sorted logs (the common case — telemetry appended in day order) find
    /// the window with two binary searches and clone only the selected range;
    /// unsorted logs fall back to a full filtering scan.
    pub fn slice_days(&self, from: DayIndex, to: DayIndex) -> TelemetryLog {
        if self.day_sorted {
            self.debug_check_day_sorted();
            let start = self.jobs.partition_point(|j| j.day() < from);
            let end = self.jobs.partition_point(|j| j.day() <= to);
            TelemetryLog {
                jobs: self.jobs[start..end].to_vec(),
                day_sorted: true,
            }
        } else {
            TelemetryLog::from_jobs(
                self.jobs
                    .iter()
                    .filter(|j| j.day() >= from && j.day() <= to)
                    .cloned()
                    .collect(),
            )
        }
    }

    /// Split the log into per-cluster logs, sorted by cluster id.
    ///
    /// Each partition preserves the original submission order (a subsequence of
    /// a day-sorted log is day-sorted, so the binary-search window slicing
    /// stays available on every shard's partition).  Borrowing variant of
    /// [`TelemetryLog::into_cluster_partitions`] — clones every record; the
    /// sharded tier's epoch loop uses the consuming variant instead.
    pub fn partition_by_cluster(&self) -> Vec<(ClusterId, TelemetryLog)> {
        self.clone().into_cluster_partitions()
    }

    /// Consume the log into per-cluster logs, sorted by cluster id — the
    /// telemetry fan-out of the sharded serving tier: one multi-cluster serving
    /// stream in, one training window per registry shard out, every record
    /// *moved* (no plan clones, no re-derivation of the plans' memoized
    /// signature slots).
    pub fn into_cluster_partitions(self) -> Vec<(ClusterId, TelemetryLog)> {
        let mut parts: Vec<(ClusterId, TelemetryLog)> = Vec::new();
        for job in self.jobs {
            let cluster = job.cluster();
            let log = match parts.iter_mut().find(|(c, _)| *c == cluster) {
                Some((_, log)) => log,
                None => {
                    parts.push((cluster, TelemetryLog::new()));
                    &mut parts.last_mut().expect("just pushed").1
                }
            };
            log.push(job);
        }
        parts.sort_by_key(|(c, _)| *c);
        parts
    }

    /// First and second moments of the window's operator population (see
    /// [`WindowMoments`]): the training-time distribution snapshot the
    /// drift-aware eviction policy compares later windows against.
    pub fn feature_moments(&self) -> WindowMoments {
        let mut count = 0usize;
        let mut sum = [0.0f64; DRIFT_DIMS];
        let mut sum_sq = [0.0f64; DRIFT_DIMS];
        let mut dims = [0.0f64; DRIFT_DIMS];
        for job in &self.jobs {
            for (node, latency) in job.operator_samples() {
                drift_dims_into(node, latency, &mut dims);
                for (d, &v) in dims.iter().enumerate() {
                    sum[d] += v;
                    sum_sq[d] += v * v;
                }
                count += 1;
            }
        }
        let mut mean = [0.0f64; DRIFT_DIMS];
        let mut variance = [0.0f64; DRIFT_DIMS];
        if count > 0 {
            let n = count as f64;
            for d in 0..DRIFT_DIMS {
                mean[d] = sum[d] / n;
                variance[d] = (sum_sq[d] / n - mean[d] * mean[d]).max(0.0);
            }
        }
        WindowMoments {
            samples: count,
            mean,
            variance,
        }
    }

    /// Keep only recurring (or only ad-hoc) jobs.
    pub fn filter_recurring(&self, recurring: bool) -> TelemetryLog {
        TelemetryLog {
            jobs: self
                .jobs
                .iter()
                .filter(|j| j.is_recurring() == recurring)
                .cloned()
                .collect(),
            // Dropping records preserves relative day order.
            day_sorted: self.day_sorted,
        }
    }

    /// Total processing time (container-seconds) across all jobs.
    pub fn total_cpu_seconds(&self) -> Seconds {
        self.jobs.iter().map(|j| j.run.total_cpu_seconds).sum()
    }

    /// Cumulative end-to-end latency across all jobs.
    pub fn total_latency(&self) -> Seconds {
        self.jobs.iter().map(|j| j.run.job_latency).sum()
    }
}

/// Number of summary dimensions tracked by [`WindowMoments`].
pub const DRIFT_DIMS: usize = 4;

/// The per-operator summary dimensions a drift check compares: log-space
/// estimated input, base, and output cardinality plus row width.  Log space
/// because cardinalities span many orders of magnitude — a linear mean would be
/// dominated by the single largest job in the window.  Deliberately limited to
/// the *data-driven* estimated statistics: plan-dependent quantities (partition
/// counts, measured latencies) shift whenever a newly published model picks
/// different plans, and a drift statistic over them would flag every model
/// improvement as workload drift.
fn drift_dims_into(node: &PhysicalNode, _latency: Seconds, dst: &mut [f64; DRIFT_DIMS]) {
    let est = &node.est;
    dst[0] = (1.0 + est.input_cardinality.max(0.0)).ln();
    dst[1] = (1.0 + est.base_cardinality.max(0.0)).ln();
    dst[2] = (1.0 + est.output_cardinality.max(0.0)).ln();
    dst[3] = (1.0 + est.avg_row_bytes.max(0.0)).ln();
}

/// Per-dimension mean/variance snapshot of a telemetry window's operator
/// population ([`DRIFT_DIMS`] log-space dimensions: estimated input, base, and
/// output cardinality plus row width).
///
/// A feedback loop records the snapshot at training time; on later windows,
/// [`WindowMoments::drift_from`] quantifies how far the population has moved —
/// separating "the workload changed" (retrain on fresh data, evict the stale
/// tail) from "the window merely grew".
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowMoments {
    /// Number of operator samples summarised.
    pub samples: usize,
    /// Per-dimension means.
    pub mean: [f64; DRIFT_DIMS],
    /// Per-dimension (population) variances.
    pub variance: [f64; DRIFT_DIMS],
}

impl WindowMoments {
    /// Distribution-shift score of `self` (the current window) against
    /// `baseline` (the training-time snapshot): the mean over dimensions of the
    /// standardised mean shift `|μ − μ₀| / √(σ₀² + ε)` plus half the absolute
    /// log variance ratio.  0 = identical distributions; ~1 = the population
    /// moved by about one training-time standard deviation.  Either side being
    /// empty scores 0 (no evidence of drift).
    pub fn drift_from(&self, baseline: &WindowMoments) -> f64 {
        if self.samples == 0 || baseline.samples == 0 {
            return 0.0;
        }
        const EPS: f64 = 1e-6;
        let mut score = 0.0;
        for d in 0..DRIFT_DIMS {
            let sigma0 = (baseline.variance[d] + EPS).sqrt();
            let mean_shift = (self.mean[d] - baseline.mean[d]).abs() / sigma0;
            let var_ratio = ((self.variance[d] + EPS) / (baseline.variance[d] + EPS))
                .ln()
                .abs();
            score += mean_shift + 0.5 * var_ratio;
        }
        score / DRIFT_DIMS as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Simulator, SimulatorConfig};
    use crate::physical::{JobMeta, PhysicalNode, PhysicalOpKind, PhysicalPlan};
    use crate::types::{ClusterId, OpStats};

    fn simple_plan(job: u64, day: u32, recurring: bool) -> PhysicalPlan {
        let mut extract = PhysicalNode::new(PhysicalOpKind::Extract, "t", vec![]);
        extract.act = OpStats {
            input_cardinality: 1e6,
            base_cardinality: 1e6,
            output_cardinality: 1e6,
            avg_row_bytes: 20.0,
        };
        extract.est = extract.act;
        extract.partition_count = 8;
        let stats = extract.act;
        let mut out = PhysicalNode::new(PhysicalOpKind::Output, "sink", vec![extract]);
        out.act = stats;
        out.est = stats;
        out.partition_count = 8;
        let meta = JobMeta {
            id: JobId(job),
            cluster: ClusterId(0),
            template: None,
            name: format!("job{job}"),
            normalized_inputs: vec!["t".into()],
            params: vec![],
            day: DayIndex(day),
            recurring,
        };
        PhysicalPlan::new(meta, out)
    }

    fn telemetry(job: u64, day: u32, recurring: bool) -> JobTelemetry {
        let plan = simple_plan(job, day, recurring);
        let run = Simulator::new(SimulatorConfig::noiseless(1)).run(&plan);
        JobTelemetry::new(plan, run)
    }

    #[test]
    fn operator_samples_pair_nodes_with_latencies() {
        let t = telemetry(1, 0, true);
        let samples = t.operator_samples();
        assert_eq!(samples.len(), 2);
        assert!(samples.iter().all(|(_, latency)| *latency > 0.0));
        assert_eq!(t.job_id(), JobId(1));
        assert!(t.is_recurring());
        assert!(t.exclusive(OpId(0)).is_some());
        assert!(t.exclusive(OpId(42)).is_none());
    }

    #[test]
    fn log_slicing_and_filtering() {
        let mut log = TelemetryLog::new();
        assert!(log.is_empty());
        log.push(telemetry(1, 0, true));
        log.push(telemetry(2, 1, true));
        log.push(telemetry(3, 2, false));
        assert_eq!(log.len(), 3);
        assert_eq!(log.operator_sample_count(), 6);
        assert_eq!(log.slice_days(DayIndex(0), DayIndex(1)).len(), 2);
        assert_eq!(log.filter_recurring(false).len(), 1);
        assert!(log.total_cpu_seconds() > 0.0);
        assert!(log.total_latency() > 0.0);

        let mut other = TelemetryLog::new();
        other.push(telemetry(4, 0, true));
        log.extend(other);
        assert_eq!(log.len(), 4);
    }

    #[test]
    fn provenance_defaults_and_stamping() {
        let t = telemetry(1, 0, true);
        assert_eq!(t.provenance, ModelProvenance::default());
        let stamped = JobTelemetry::with_provenance(
            t.plan.clone(),
            t.run.clone(),
            ModelProvenance {
                epoch: 3,
                model_version: 7,
                model_cluster: Some(ClusterId(2)),
                delta_base: Some(6),
            },
        );
        assert_eq!(stamped.provenance.epoch, 3);
        assert_eq!(stamped.provenance.model_version, 7);
        assert_eq!(stamped.provenance.model_cluster, Some(ClusterId(2)));
        assert_eq!(stamped.provenance.delta_base, Some(6));
    }

    #[test]
    fn partition_by_cluster_splits_and_preserves_order() {
        let mut log = TelemetryLog::new();
        for (job, day, cluster) in [(1u64, 0u32, 2u8), (2, 0, 0), (3, 1, 2), (4, 2, 1)] {
            let mut t = telemetry(job, day, true);
            t.plan.meta.cluster = ClusterId(cluster);
            log.push(t);
        }
        let parts = log.partition_by_cluster();
        let clusters: Vec<u8> = parts.iter().map(|(c, _)| c.0).collect();
        assert_eq!(clusters, vec![0, 1, 2]);
        let c2 = &parts[2].1;
        assert_eq!(c2.len(), 2);
        assert_eq!(
            c2.jobs().iter().map(|j| j.job_id().0).collect::<Vec<_>>(),
            vec![1, 3]
        );
        // Partitions of a day-sorted log stay day-sorted.
        assert!(parts.iter().all(|(_, p)| p.is_day_sorted()));
        assert_eq!(parts.iter().map(|(_, p)| p.len()).sum::<usize>(), log.len());
    }

    #[test]
    fn window_moments_detect_distribution_shift() {
        let mut small = TelemetryLog::new();
        let mut large = TelemetryLog::new();
        for i in 0..8u64 {
            small.push(telemetry(i, 0, true));
            // Same structure, very different scale: rebuild with 100x the rows.
            let mut plan = simple_plan(100 + i, 0, true);
            plan.root.visit_mut(&mut |node| {
                node.act.input_cardinality *= 100.0;
                node.act.base_cardinality *= 100.0;
                node.act.output_cardinality *= 100.0;
                node.est = node.act;
            });
            let run = Simulator::new(SimulatorConfig::noiseless(1)).run(&plan);
            large.push(JobTelemetry::new(plan, run));
        }
        let base = small.feature_moments();
        assert_eq!(base.samples, 16);
        // Identical windows do not drift; shifted windows do.
        assert!(base.drift_from(&base) < 1e-9);
        let shifted = large.feature_moments();
        assert!(
            shifted.drift_from(&base) > 1.0,
            "score {}",
            shifted.drift_from(&base)
        );
        // Empty windows never report drift.
        assert_eq!(TelemetryLog::new().feature_moments().drift_from(&base), 0.0);
    }

    #[test]
    fn day_sorted_slicing_matches_filter_scan() {
        // In-order pushes keep the sorted fast path.
        let mut sorted = TelemetryLog::new();
        for (job, day) in [(1u64, 0u32), (2, 0), (3, 1), (4, 2), (5, 2)] {
            sorted.push(telemetry(job, day, true));
        }
        assert!(sorted.is_day_sorted());

        // The same records pushed out of order lose it, but slicing must agree.
        let mut shuffled = TelemetryLog::new();
        for (job, day) in [(4u64, 2u32), (1, 0), (3, 1), (2, 0), (5, 2)] {
            shuffled.push(telemetry(job, day, true));
        }
        assert!(!shuffled.is_day_sorted());

        for (from, to) in [(0u32, 0u32), (0, 1), (1, 2), (2, 2), (3, 9)] {
            let a = sorted.slice_days(DayIndex(from), DayIndex(to));
            let b = shuffled.slice_days(DayIndex(from), DayIndex(to));
            let mut ids_a: Vec<u64> = a.jobs.iter().map(|j| j.job_id().0).collect();
            let mut ids_b: Vec<u64> = b.jobs.iter().map(|j| j.job_id().0).collect();
            ids_a.sort_unstable();
            ids_b.sort_unstable();
            assert_eq!(ids_a, ids_b, "window [{from}, {to}]");
        }
    }

    #[test]
    fn drain_window_evicts_oldest_first() {
        let mut log = TelemetryLog::new();
        for day in 0..5u32 {
            log.push(telemetry(day as u64, day, true));
        }
        let evicted = log.drain_window(2);
        assert_eq!(evicted.len(), 3);
        assert_eq!(evicted[0].day(), DayIndex(0));
        assert_eq!(log.len(), 2);
        assert_eq!(log.jobs[0].day(), DayIndex(3));
        assert!(log.is_day_sorted());
        // Already below the bound: nothing evicted.
        assert!(log.drain_window(10).is_empty());
    }

    #[test]
    fn retain_recent_days_keeps_the_trailing_window() {
        let mut log = TelemetryLog::new();
        for day in 0..6u32 {
            log.push(telemetry(day as u64, day, true));
            log.push(telemetry(100 + day as u64, day, false));
        }
        let evicted = log.retain_recent_days(2);
        assert_eq!(evicted.len(), 8);
        assert!(log.jobs.iter().all(|j| j.day() >= DayIndex(4)));
        assert_eq!(log.len(), 4);

        // Unsorted fallback gives the same surviving set.
        let mut unsorted = TelemetryLog::new();
        for day in [3u32, 0, 5, 1, 4, 2] {
            unsorted.push(telemetry(day as u64, day, true));
        }
        assert!(!unsorted.is_day_sorted());
        unsorted.retain_recent_days(2);
        let mut days: Vec<u32> = unsorted.jobs.iter().map(|j| j.day().0).collect();
        days.sort_unstable();
        assert_eq!(days, vec![4, 5]);
    }
}
