//! Telemetry: the training data Cleo learns from.
//!
//! SCOPE is "already instrumented to collect logs of query plan statistics such as
//! cardinalities, estimated costs, as well as runtime traces" (Section 5.1).  In the
//! reproduction, telemetry couples the optimized [`PhysicalPlan`] (which carries the
//! compile-time estimated statistics — the features) with the simulator's [`JobRun`]
//! (which carries per-operator exclusive latencies — the labels).

use crate::exec::JobRun;
use crate::physical::{PhysicalNode, PhysicalPlan};
use crate::types::{DayIndex, JobId, OpId, Seconds};

/// The record of one executed job: its plan and its measured runtimes.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTelemetry {
    /// The plan that was executed (estimated statistics included).
    pub plan: PhysicalPlan,
    /// The measured execution outcome.
    pub run: JobRun,
}

impl JobTelemetry {
    /// Job id convenience accessor.
    pub fn job_id(&self) -> JobId {
        self.plan.meta.id
    }

    /// Day the job ran.
    pub fn day(&self) -> DayIndex {
        self.plan.meta.day
    }

    /// True when the job was recurring.
    pub fn is_recurring(&self) -> bool {
        self.plan.meta.recurring
    }

    /// Iterate over `(operator node, exclusive latency)` pairs for every operator with
    /// a measured latency.
    pub fn operator_samples(&self) -> Vec<(&PhysicalNode, Seconds)> {
        let mut out = Vec::with_capacity(self.plan.op_count());
        self.plan.root.visit(&mut |node| {
            if let Some(latency) = self.run.exclusive(node.id) {
                out.push((node, latency));
            }
        });
        out
    }

    /// Exclusive latency of one operator, if recorded.
    pub fn exclusive(&self, op: OpId) -> Option<Seconds> {
        self.run.exclusive(op)
    }
}

/// A collection of executed jobs — one cluster-day (or several) of telemetry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryLog {
    /// Executed jobs in submission order.
    pub jobs: Vec<JobTelemetry>,
}

impl TelemetryLog {
    /// Create an empty log.
    pub fn new() -> Self {
        TelemetryLog::default()
    }

    /// Append one executed job.
    pub fn push(&mut self, job: JobTelemetry) {
        self.jobs.push(job);
    }

    /// Merge another log into this one.
    pub fn extend(&mut self, other: TelemetryLog) {
        self.jobs.extend(other.jobs);
    }

    /// Number of recorded jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when no jobs are recorded.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Total number of operator samples across all jobs.
    pub fn operator_sample_count(&self) -> usize {
        self.jobs.iter().map(|j| j.run.operator_runs.len()).sum()
    }

    /// Keep only jobs that ran within `[from, to]` (inclusive) days.
    pub fn slice_days(&self, from: DayIndex, to: DayIndex) -> TelemetryLog {
        TelemetryLog {
            jobs: self
                .jobs
                .iter()
                .filter(|j| j.day() >= from && j.day() <= to)
                .cloned()
                .collect(),
        }
    }

    /// Keep only recurring (or only ad-hoc) jobs.
    pub fn filter_recurring(&self, recurring: bool) -> TelemetryLog {
        TelemetryLog {
            jobs: self
                .jobs
                .iter()
                .filter(|j| j.is_recurring() == recurring)
                .cloned()
                .collect(),
        }
    }

    /// Total processing time (container-seconds) across all jobs.
    pub fn total_cpu_seconds(&self) -> Seconds {
        self.jobs.iter().map(|j| j.run.total_cpu_seconds).sum()
    }

    /// Cumulative end-to-end latency across all jobs.
    pub fn total_latency(&self) -> Seconds {
        self.jobs.iter().map(|j| j.run.job_latency).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Simulator, SimulatorConfig};
    use crate::physical::{JobMeta, PhysicalNode, PhysicalOpKind, PhysicalPlan};
    use crate::types::{ClusterId, OpStats};

    fn simple_plan(job: u64, day: u32, recurring: bool) -> PhysicalPlan {
        let mut extract = PhysicalNode::new(PhysicalOpKind::Extract, "t", vec![]);
        extract.act = OpStats {
            input_cardinality: 1e6,
            base_cardinality: 1e6,
            output_cardinality: 1e6,
            avg_row_bytes: 20.0,
        };
        extract.est = extract.act;
        extract.partition_count = 8;
        let stats = extract.act;
        let mut out = PhysicalNode::new(PhysicalOpKind::Output, "sink", vec![extract]);
        out.act = stats;
        out.est = stats;
        out.partition_count = 8;
        let meta = JobMeta {
            id: JobId(job),
            cluster: ClusterId(0),
            template: None,
            name: format!("job{job}"),
            normalized_inputs: vec!["t".into()],
            params: vec![],
            day: DayIndex(day),
            recurring,
        };
        PhysicalPlan::new(meta, out)
    }

    fn telemetry(job: u64, day: u32, recurring: bool) -> JobTelemetry {
        let plan = simple_plan(job, day, recurring);
        let run = Simulator::new(SimulatorConfig::noiseless(1)).run(&plan);
        JobTelemetry { plan, run }
    }

    #[test]
    fn operator_samples_pair_nodes_with_latencies() {
        let t = telemetry(1, 0, true);
        let samples = t.operator_samples();
        assert_eq!(samples.len(), 2);
        assert!(samples.iter().all(|(_, latency)| *latency > 0.0));
        assert_eq!(t.job_id(), JobId(1));
        assert!(t.is_recurring());
        assert!(t.exclusive(OpId(0)).is_some());
        assert!(t.exclusive(OpId(42)).is_none());
    }

    #[test]
    fn log_slicing_and_filtering() {
        let mut log = TelemetryLog::new();
        assert!(log.is_empty());
        log.push(telemetry(1, 0, true));
        log.push(telemetry(2, 1, true));
        log.push(telemetry(3, 2, false));
        assert_eq!(log.len(), 3);
        assert_eq!(log.operator_sample_count(), 6);
        assert_eq!(log.slice_days(DayIndex(0), DayIndex(1)).len(), 2);
        assert_eq!(log.filter_recurring(false).len(), 1);
        assert!(log.total_cpu_seconds() > 0.0);
        assert!(log.total_latency() > 0.0);

        let mut other = TelemetryLog::new();
        other.push(telemetry(4, 0, true));
        log.extend(other);
        assert_eq!(log.len(), 4);
    }
}
