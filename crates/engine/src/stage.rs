//! Stage formation.
//!
//! SCOPE groups the sequence of operators that run over the same set of input
//! partitions into a *stage*: all operators in a stage run on the same machines with
//! the same degree of parallelism (Section 2.1).  Stages begin at partitioning
//! operators — Extract (leaf) and Exchange (repartition) — and every operator above
//! them, up to the next partitioning operator, derives the same partition count
//! (Figure 8b: Stage 1 = {Extract, Sort}, Stage 2 = {Exchange, Reduce, Output}).

use std::collections::BTreeMap;

use crate::physical::{PhysicalNode, PhysicalPlan};
use crate::types::OpId;

/// One stage of a physical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Stage id (0-based, in discovery order from the leaves up).
    pub id: usize,
    /// The partitioning operator (Extract or Exchange) that established this stage.
    pub partitioning_op: OpId,
    /// All operators in the stage, bottom-up (partitioning operator first).
    pub op_ids: Vec<OpId>,
    /// The partition count shared by every operator in the stage.
    pub partition_count: usize,
    /// Ids of stages whose output this stage consumes.
    pub child_stages: Vec<usize>,
}

/// The stage decomposition of a plan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StageGraph {
    /// Stages indexed by id.
    pub stages: Vec<Stage>,
    /// Operator → stage id.
    pub op_stage: BTreeMap<OpId, usize>,
}

impl StageGraph {
    /// Stage id of an operator.
    pub fn stage_of(&self, op: OpId) -> Option<usize> {
        self.op_stage.get(&op).copied()
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when no stages exist (empty plan).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

/// Compute the stage decomposition of a physical plan.
///
/// Every Extract and Exchange starts a new stage; any other operator joins the stage of
/// its first child (after exchange insertion, a binary operator's children either share
/// a stage or the operator's stage follows its left/probe input, matching SCOPE's
/// convention that the non-repartitioned side stays local).
pub fn build_stage_graph(plan: &PhysicalPlan) -> StageGraph {
    let mut graph = StageGraph::default();
    assign(&plan.root, &mut graph);
    graph
}

/// Recursively assign stages bottom-up; returns the stage id of `node`.
fn assign(node: &PhysicalNode, graph: &mut StageGraph) -> usize {
    let child_stage_ids: Vec<usize> = node.children.iter().map(|c| assign(c, graph)).collect();

    let stage_id = if node.kind.is_partitioning() || child_stage_ids.is_empty() {
        // New stage rooted at this partitioning operator (or at a leaf that is not an
        // Extract, which should not happen in well-formed plans but stays safe).
        let id = graph.stages.len();
        graph.stages.push(Stage {
            id,
            partitioning_op: node.id,
            op_ids: vec![node.id],
            partition_count: node.partition_count,
            child_stages: child_stage_ids.clone(),
        });
        id
    } else {
        // Join the first child's stage.
        let id = child_stage_ids[0];
        graph.stages[id].op_ids.push(node.id);
        // A binary operator can pull additional producer stages into this stage's
        // dependency list.
        for &cs in &child_stage_ids[1..] {
            if cs != id && !graph.stages[id].child_stages.contains(&cs) {
                graph.stages[id].child_stages.push(cs);
            }
        }
        id
    };
    graph.op_stage.insert(node.id, stage_id);
    stage_id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::{JobMeta, PhysicalOpKind, PhysicalPlan};
    use crate::types::{ClusterId, DayIndex, JobId};

    fn meta() -> JobMeta {
        JobMeta {
            id: JobId(7),
            cluster: ClusterId(1),
            template: None,
            name: "stage_test".into(),
            normalized_inputs: vec![],
            params: vec![],
            day: DayIndex(0),
            recurring: true,
        }
    }

    fn node(kind: PhysicalOpKind, children: Vec<PhysicalNode>, parts: usize) -> PhysicalNode {
        let mut n = PhysicalNode::new(kind, kind.name(), children);
        n.partition_count = parts;
        n
    }

    /// The plan from Figure 8b: Extract → Sort → Exchange → Reduce(Process) → Output.
    fn figure_8b_plan() -> PhysicalPlan {
        let extract = node(PhysicalOpKind::Extract, vec![], 8);
        let sort = node(PhysicalOpKind::Sort, vec![extract], 8);
        let exch = node(PhysicalOpKind::Exchange, vec![sort], 16);
        let reduce = node(PhysicalOpKind::Process, vec![exch], 16);
        let output = node(PhysicalOpKind::Output, vec![reduce], 16);
        PhysicalPlan::new(meta(), output)
    }

    #[test]
    fn figure_8b_decomposes_into_two_stages() {
        let plan = figure_8b_plan();
        let graph = build_stage_graph(&plan);
        assert_eq!(graph.len(), 2);
        // Stage 0 is the leaf stage (Extract, Sort), stage 1 the consumer
        // (Exchange, Process, Output).
        assert_eq!(graph.stages[0].op_ids.len(), 2);
        assert_eq!(graph.stages[1].op_ids.len(), 3);
        assert_eq!(graph.stages[0].partition_count, 8);
        assert_eq!(graph.stages[1].partition_count, 16);
        assert_eq!(graph.stages[1].child_stages, vec![0]);
        // Every operator is assigned to exactly one stage.
        assert_eq!(graph.op_stage.len(), plan.op_count());
    }

    #[test]
    fn join_plan_merges_exchange_children_into_one_stage() {
        // Extract(a) -> Exchange ┐
        //                        ├ HashJoin -> Output
        // Extract(b) -> Exchange ┘
        let ea = node(PhysicalOpKind::Extract, vec![], 4);
        let xa = node(PhysicalOpKind::Exchange, vec![ea], 32);
        let eb = node(PhysicalOpKind::Extract, vec![], 2);
        let xb = node(PhysicalOpKind::Exchange, vec![eb], 32);
        let join = node(PhysicalOpKind::HashJoin, vec![xa, xb], 32);
        let out = node(PhysicalOpKind::Output, vec![join], 32);
        let plan = PhysicalPlan::new(meta(), out);
        let graph = build_stage_graph(&plan);
        // Stages: extract(a), extract(b), exchange(a)+join+output, exchange(b).
        assert_eq!(graph.len(), 4);
        let join_node = plan
            .operators()
            .into_iter()
            .find(|o| o.kind == PhysicalOpKind::HashJoin)
            .unwrap();
        let join_stage = graph.stage_of(join_node.id).unwrap();
        // The join's stage must contain the first exchange and the output.
        assert_eq!(graph.stages[join_stage].op_ids.len(), 3);
        // And depend on both the other exchange's stage and (transitively) nothing else.
        assert_eq!(graph.stages[join_stage].child_stages.len(), 2);
    }

    #[test]
    fn single_stage_plan() {
        let extract = node(PhysicalOpKind::Extract, vec![], 10);
        let filter = node(PhysicalOpKind::Filter, vec![extract], 10);
        let out = node(PhysicalOpKind::Output, vec![filter], 10);
        let plan = PhysicalPlan::new(meta(), out);
        let graph = build_stage_graph(&plan);
        assert_eq!(graph.len(), 1);
        assert_eq!(graph.stages[0].op_ids.len(), 3);
        assert!(graph.stages[0].child_stages.is_empty());
        assert!(!graph.is_empty());
    }
}
