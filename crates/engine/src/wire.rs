//! Generic length-prefixed binary framing, in the `CLT1` telemetry style.
//!
//! Every compact binary format in the workspace shares one frame shape:
//!
//! ```text
//! [4-byte magic][u32 record count][u32 len | payload]*count
//! ```
//!
//! with all integers little-endian and every `f64` written as the LE bytes of
//! its IEEE-754 bit pattern (`to_bits`), so round-trips are bit-exact —
//! including NaN payloads and signed zeros.  This module is the shared
//! implementation: [`write_binary`](crate::telemetry_io::write_binary) frames
//! telemetry through it, and the model-snapshot codec in `cleo-core` frames
//! snapshots through it, so the framing (and its span-exact corruption
//! errors) cannot drift between formats.
//!
//! Errors follow the telemetry convention: [`CleoError::Parse`] with `line` =
//! the 1-based record number (0 = the stream header) and `start..end` = the
//! byte span of the offending token.  Header/framing errors report spans in
//! whole-buffer coordinates; [`Cursor`] errors report spans within the record
//! payload.  Corrupt input of any shape — truncation, bad magic, implausible
//! counts, trailing bytes — is a returned error, never a panic or an
//! attempted huge allocation.

use cleo_common::{CleoError, Result};

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Append a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a `u32`, little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64`, little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as the LE bytes of its bit pattern (bit-exact round-trip).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Start a frame: magic plus the record count.
pub fn frame_header(magic: [u8; 4], count: usize) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&magic);
    put_u32(&mut out, count as u32);
    out
}

/// Append one length-prefixed record whose payload `encode` writes: reserves
/// the `u32` length, runs the encoder, then backpatches the actual length.
pub fn with_record(out: &mut Vec<u8>, encode: impl FnOnce(&mut Vec<u8>)) {
    let len_at = out.len();
    put_u32(out, 0);
    encode(out);
    let payload_len = (out.len() - len_at - 4) as u32;
    out[len_at..len_at + 4].copy_from_slice(&payload_len.to_le_bytes());
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Validate a frame and return its record payloads in order.
///
/// `what` names the format in error messages (e.g. `"binary telemetry"`,
/// `"model snapshot"`).  Rejects a wrong magic, a record whose length prefix
/// runs past the buffer, and trailing bytes after the final record — each
/// with the exact byte span of the corruption.
pub fn record_payloads<'a>(buf: &'a [u8], magic: [u8; 4], what: &str) -> Result<Vec<&'a [u8]>> {
    if buf.len() < 8 || buf[..4] != magic {
        return Err(CleoError::parse_at(
            0,
            0,
            buf.len().clamp(1, 4),
            format!("bad {what} magic"),
        ));
    }
    let count = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes")) as usize;
    let mut payloads = Vec::new();
    let mut pos = 8usize;
    for record in 1..=count {
        if pos + 4 > buf.len() {
            return Err(CleoError::parse_at(
                record,
                pos,
                buf.len(),
                format!("truncated stream: record {record} of {count} has no length prefix"),
            ));
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let start = pos + 4;
        if start + len > buf.len() {
            return Err(CleoError::parse_at(
                record,
                pos,
                pos + 4,
                format!(
                    "truncated record: length prefix {len} exceeds remaining {} bytes",
                    buf.len() - start
                ),
            ));
        }
        payloads.push(&buf[start..start + len]);
        pos = start + len;
    }
    if pos != buf.len() {
        return Err(CleoError::parse_at(
            0,
            pos,
            buf.len(),
            "trailing bytes after final record",
        ));
    }
    Ok(payloads)
}

/// Little-endian cursor over one record payload, with span-exact errors
/// (`line` = the record number, spans relative to the payload start).
pub struct Cursor<'a> {
    record: usize,
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Cursor over `payload`, reporting errors as record `record` (1-based).
    pub fn new(record: usize, payload: &'a [u8]) -> Self {
        Cursor {
            record,
            buf: payload,
            pos: 0,
        }
    }

    /// A span-exact error at `start..end` within this record's payload.
    pub fn err<T>(&self, start: usize, end: usize, msg: impl Into<String>) -> Result<T> {
        Err(CleoError::parse_at(self.record, start, end, msg))
    }

    /// Current byte offset within the payload.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Take `n` raw bytes; `what` names the field in the truncation error.
    pub fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.pos + n <= self.buf.len() {
            let s = &self.buf[self.pos..self.pos + n];
            self.pos += n;
            Ok(s)
        } else {
            self.err(
                self.pos,
                self.buf.len(),
                format!("truncated record: {n} bytes needed for {what}"),
            )
        }
    }

    /// Read a `u8`.
    pub fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read an `f64` from its bit pattern (bit-exact).
    pub fn f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn string(&mut self, what: &str) -> Result<String> {
        let len = self.u32(what)? as usize;
        let start = self.pos;
        let raw = self.take(len, what)?;
        match std::str::from_utf8(raw) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => self.err(start, start + len, format!("invalid UTF-8 in {what}")),
        }
    }

    /// Read a `0`/`1` flag, rejecting any other value at its exact byte.
    pub fn flag(&mut self, what: &str) -> Result<bool> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            v => self.err(self.pos - 1, self.pos, format!("invalid {what} flag {v}")),
        }
    }

    /// Read a `u32` element count, rejecting counts that could not possibly
    /// fit in the remaining payload (`min_elem_bytes` per element) — a
    /// corrupt count is an error, not a huge allocation request.
    pub fn count(&mut self, min_elem_bytes: usize, what: &str) -> Result<usize> {
        let n = self.u32(what)? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(min_elem_bytes.max(1)) > remaining {
            return self.err(
                self.pos - 4,
                self.pos,
                format!("implausible {what} count {n}"),
            );
        }
        Ok(n)
    }

    /// Assert the payload is fully consumed (a record with trailing bytes is
    /// corrupt — likely a format-version mismatch).
    pub fn finish(&self, what: &str) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(CleoError::parse_at(
                self.record,
                self.pos,
                self.buf.len(),
                format!("trailing bytes after {what} record"),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: [u8; 4] = *b"TST1";

    fn two_record_frame() -> Vec<u8> {
        let mut out = frame_header(MAGIC, 2);
        with_record(&mut out, |out| {
            put_u64(out, 7);
            put_f64(out, -0.0);
            put_str(out, "alpha");
        });
        with_record(&mut out, |out| {
            put_u8(out, 1);
            put_u32(out, 42);
        });
        out
    }

    #[test]
    fn frame_round_trips_and_is_fully_consumed() {
        let buf = two_record_frame();
        let payloads = record_payloads(&buf, MAGIC, "test frame").unwrap();
        assert_eq!(payloads.len(), 2);
        let mut c = Cursor::new(1, payloads[0]);
        assert_eq!(c.u64("id").unwrap(), 7);
        let z = c.f64("zero").unwrap();
        assert_eq!(z.to_bits(), (-0.0f64).to_bits(), "bit-exact f64");
        assert_eq!(c.string("name").unwrap(), "alpha");
        c.finish("test").unwrap();
        let mut c = Cursor::new(2, payloads[1]);
        assert!(c.flag("flag").unwrap());
        assert_eq!(c.u32("n").unwrap(), 42);
        c.finish("test").unwrap();
    }

    #[test]
    fn bad_magic_truncation_and_trailing_bytes_are_span_exact() {
        let buf = two_record_frame();

        let mut bad = buf.clone();
        bad[0] = b'X';
        let err = record_payloads(&bad, MAGIC, "test frame").unwrap_err();
        assert_eq!(err.parse_span(), Some((0, 0, 4)));
        assert!(err.to_string().contains("bad test frame magic"), "{err}");

        // Truncation mid-record: the length prefix outruns the buffer.
        let err = record_payloads(&buf[..buf.len() - 3], MAGIC, "test frame").unwrap_err();
        let (record, _, _) = err.parse_span().unwrap();
        assert_eq!(record, 2);
        assert!(err.to_string().contains("truncated"), "{err}");

        let mut trailing = buf.clone();
        trailing.push(0xEE);
        let err = record_payloads(&trailing, MAGIC, "test frame").unwrap_err();
        assert_eq!(err.parse_span(), Some((0, buf.len(), buf.len() + 1)));

        // An empty buffer is a magic error, not a panic.
        assert!(record_payloads(&[], MAGIC, "test frame").is_err());
    }

    #[test]
    fn cursor_rejects_bad_flags_implausible_counts_and_short_reads() {
        let mut payload = Vec::new();
        put_u8(&mut payload, 9);
        let mut c = Cursor::new(3, &payload);
        let err = c.flag("fitted").unwrap_err();
        assert_eq!(err.parse_span(), Some((3, 0, 1)));
        assert!(err.to_string().contains("invalid fitted flag 9"));

        let mut payload = Vec::new();
        put_u32(&mut payload, u32::MAX);
        let mut c = Cursor::new(1, &payload);
        let err = c.count(8, "weights").unwrap_err();
        assert!(err.to_string().contains("implausible weights count"));

        let mut c = Cursor::new(1, &[1, 2]);
        let err = c.u64("version").unwrap_err();
        assert!(err.to_string().contains("8 bytes needed for version"));

        let mut c = Cursor::new(1, &[0, 1, 2]);
        c.u8("x").unwrap();
        let err = c.finish("test").unwrap_err();
        assert_eq!(err.parse_span(), Some((1, 1, 3)));
    }
}
