//! Core identifiers and statistics types shared across the engine.

use std::fmt;

/// Identifies a cluster (the paper's evaluation spans 4 production clusters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterId(pub u8);

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cluster{}", self.0 + 1)
    }
}

/// Identifies a recurring-job template (the "script template" of Section 2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TemplateId(pub u64);

/// Identifies one job instance (one submission of a template, or one ad-hoc job).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// Identifies an operator within a physical plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub usize);

/// A day index within the generated workload trace (day 0 is the first day).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DayIndex(pub u32);

/// Row-count / width statistics attached to each operator, either as compile-time
/// estimates or as post-execution actuals.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OpStats {
    /// Total input cardinality from the children operators (feature `I` in Table 2).
    pub input_cardinality: f64,
    /// Total input cardinality of the leaf operators of the subgraph (feature `B`).
    pub base_cardinality: f64,
    /// Output cardinality of the operator (feature `C`).
    pub output_cardinality: f64,
    /// Average output row length in bytes (feature `L`).
    pub avg_row_bytes: f64,
}

impl OpStats {
    /// Total output bytes implied by cardinality × row width.
    pub fn output_bytes(&self) -> f64 {
        self.output_cardinality * self.avg_row_bytes
    }

    /// Total input bytes implied by input cardinality × row width.
    pub fn input_bytes(&self) -> f64 {
        self.input_cardinality * self.avg_row_bytes
    }
}

/// Seconds, the unit for all latencies and exclusive costs in the engine.
pub type Seconds = f64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_display_is_one_based() {
        assert_eq!(ClusterId(0).to_string(), "Cluster1");
        assert_eq!(ClusterId(3).to_string(), "Cluster4");
    }

    #[test]
    fn op_stats_byte_helpers() {
        let s = OpStats {
            input_cardinality: 10.0,
            base_cardinality: 100.0,
            output_cardinality: 5.0,
            avg_row_bytes: 20.0,
        };
        assert_eq!(s.output_bytes(), 100.0);
        assert_eq!(s.input_bytes(), 200.0);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let mut set = std::collections::HashSet::new();
        set.insert(JobId(1));
        set.insert(JobId(2));
        set.insert(JobId(1));
        assert_eq!(set.len(), 2);
        assert!(OpId(1) < OpId(2));
        assert!(DayIndex(0) < DayIndex(3));
    }
}
