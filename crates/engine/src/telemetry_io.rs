//! Telemetry wire formats: the firehose the feedback loop drinks from.
//!
//! Production Cleo trains on telemetry streamed out of SCOPE's logging
//! pipeline (Section 5.1).  This module gives the reproduction an equivalent
//! ingestion boundary: executed jobs serialized one-per-record to either
//!
//! * **NDJSON** — one JSON object per `\n`-terminated line, fields in a fixed
//!   canonical order (the order [`append_job_ndjson`] emits).  Human-greppable,
//!   diff-able, and parsed here by a hand-rolled reader built on
//!   [`cleo_common::scan`]'s SWAR byte scanning — no per-byte branching on the
//!   hot path, no allocation during the validation scan; or
//! * **compact binary** — length-prefixed little-endian records
//!   ([`write_binary`] / [`read_binary`]), for when parse throughput matters
//!   more than greppability.  `f64` fields round-trip bit-exactly by
//!   construction (`to_le_bytes`).
//!
//! Both readers enforce the firehose contract: records arrive in
//! **non-decreasing day order** (what keeps [`TelemetryLog`]'s binary-search
//! windowing on its fast path), strings are valid UTF-8, and every structural
//! or numeric defect is reported as [`CleoError::Parse`] with the 1-based
//! record/line number and the exact byte span of the offending token — so a
//! corrupt dump can be pointed at, not just rejected.
//!
//! Round-trips are exact: floating-point values are written in shortest
//! round-trip decimal form (NDJSON) or raw bits (binary), operator trees are
//! emitted pre-order with parent indices, and operator ids re-assigned on read
//! equal the emitted pre-order positions (the invariant
//! [`PhysicalPlan::new`] maintains).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use cleo_common::obs::{
    AdmissionKind, BreakerKind, PublishKind, RouteKind, TraceEvent, WatchdogKind, NO_CLUSTER,
};
use cleo_common::scan::{parse_f64, parse_u64, Lines};
use cleo_common::{CleoError, Result};

use crate::exec::{JobRun, OperatorRun};
use crate::physical::{JobMeta, PhysicalNode, PhysicalOpKind, PhysicalPlan};
use crate::telemetry::{JobTelemetry, ModelProvenance, TelemetryLog};
use crate::types::{ClusterId, DayIndex, JobId, OpId, OpStats, TemplateId};
use crate::wire::{self, put_f64, put_str, put_u32, put_u64};

// ---------------------------------------------------------------------------
// NDJSON writer
// ---------------------------------------------------------------------------

/// Append one job as a single NDJSON line (no trailing newline).
///
/// Canonical field order — the strict reader requires exactly this order:
/// `job, cluster, day, template, recurring, name, inputs, params, epoch,
/// model_version, model_cluster, delta_base, latency, cpu, containers, ops`;
/// each op carries `parent, kind, label, partitions, part_on, sort_on, udf,
/// est, act, run` with ops in pre-order and `parent` the pre-order index of
/// the parent (`-1` for the root).
pub fn append_job_ndjson(job: &JobTelemetry, out: &mut String) {
    let m = &job.plan.meta;
    let _ = write!(
        out,
        "{{\"job\":{},\"cluster\":{},\"day\":{},",
        m.id.0, m.cluster.0, m.day.0
    );
    match m.template {
        Some(t) => {
            let _ = write!(out, "\"template\":{},", t.0);
        }
        None => out.push_str("\"template\":null,"),
    }
    let _ = write!(out, "\"recurring\":{},\"name\":", m.recurring);
    escape_json_into(&m.name, out);
    out.push_str(",\"inputs\":[");
    for (i, input) in m.normalized_inputs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_json_into(input, out);
    }
    out.push_str("],\"params\":[");
    for (i, p) in m.params.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{p}");
    }
    let prov = &job.provenance;
    let _ = write!(
        out,
        "],\"epoch\":{},\"model_version\":{},",
        prov.epoch, prov.model_version
    );
    match prov.model_cluster {
        Some(c) => {
            let _ = write!(out, "\"model_cluster\":{},", c.0);
        }
        None => out.push_str("\"model_cluster\":null,"),
    }
    match prov.delta_base {
        Some(v) => {
            let _ = write!(out, "\"delta_base\":{},", v);
        }
        None => out.push_str("\"delta_base\":null,"),
    }
    let _ = write!(
        out,
        "\"latency\":{},\"cpu\":{},\"containers\":{},\"ops\":[",
        job.run.job_latency, job.run.total_cpu_seconds, job.run.peak_containers
    );
    for (i, (node, parent)) in preorder_with_parents(&job.plan.root).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let parent_repr: i64 = parent.map_or(-1, |p| p as i64);
        let _ = write!(
            out,
            "{{\"parent\":{parent_repr},\"kind\":\"{}\",\"label\":",
            node.kind.name()
        );
        escape_json_into(&node.label, out);
        let _ = write!(
            out,
            ",\"partitions\":{},\"part_on\":[",
            node.partition_count
        );
        for (j, c) in node.partitioned_on.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            escape_json_into(c, out);
        }
        out.push_str("],\"sort_on\":[");
        for (j, c) in node.sorted_on.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            escape_json_into(c, out);
        }
        let _ = write!(out, "],\"udf\":{},", node.udf_cost_factor);
        append_stats(out, "est", &node.est);
        out.push(',');
        append_stats(out, "act", &node.act);
        match job.run.operator_runs.get(&node.id) {
            Some(r) => {
                let _ = write!(
                    out,
                    ",\"run\":[{},{}]}}",
                    r.exclusive_seconds, r.partition_count
                );
            }
            None => out.push_str(",\"run\":null}"),
        }
    }
    out.push_str("]}");
}

/// Serialize a whole log as NDJSON, one job per line, trailing newline on
/// every record.
pub fn write_ndjson(log: &TelemetryLog) -> String {
    let mut out = String::new();
    for job in log.jobs() {
        append_job_ndjson(job, &mut out);
        out.push('\n');
    }
    out
}

fn append_stats(out: &mut String, key: &str, s: &OpStats) {
    let _ = write!(
        out,
        "\"{key}\":[{},{},{},{}]",
        s.input_cardinality, s.base_cardinality, s.output_cardinality, s.avg_row_bytes
    );
}

fn escape_json_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Pre-order node list with each node's parent pre-order index.
fn preorder_with_parents(root: &PhysicalNode) -> Vec<(&PhysicalNode, Option<usize>)> {
    fn walk<'a>(
        node: &'a PhysicalNode,
        parent: Option<usize>,
        out: &mut Vec<(&'a PhysicalNode, Option<usize>)>,
    ) {
        let idx = out.len();
        out.push((node, parent));
        for child in &node.children {
            walk(child, Some(idx), out);
        }
    }
    let mut out = Vec::with_capacity(root.node_count());
    walk(root, None, &mut out);
    out
}

// ---------------------------------------------------------------------------
// Span-exact line parser
// ---------------------------------------------------------------------------

/// Byte-level cursor over one record with span-exact error reporting.  All
/// spans are byte offsets **within the line** (NDJSON) or **within the record
/// payload** (binary), matching [`CleoError::Parse`]'s contract.
struct LineParser<'a> {
    line: usize,
    buf: &'a [u8],
    pos: usize,
}

impl<'a> LineParser<'a> {
    fn new(line: usize, buf: &'a [u8]) -> Self {
        LineParser { line, buf, pos: 0 }
    }

    fn err<T>(&self, start: usize, end: usize, msg: impl Into<String>) -> Result<T> {
        Err(CleoError::Parse {
            line: self.line,
            start,
            end: end.max(start + 1),
            msg: msg.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.buf.get(self.pos).copied()
    }

    fn expect(&mut self, lit: &[u8], what: &str) -> Result<()> {
        if self.buf[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(())
        } else {
            let end = (self.pos + lit.len()).min(self.buf.len());
            self.err(self.pos, end, format!("expected {what}"))
        }
    }

    /// Match `"name":` without allocating the pattern.
    fn key(&mut self, name: &'static str) -> Result<()> {
        let n = name.as_bytes();
        let p = self.pos;
        let ok = self.buf.len() >= p + n.len() + 3
            && self.buf[p] == b'"'
            && &self.buf[p + 1..p + 1 + n.len()] == n
            && self.buf[p + 1 + n.len()] == b'"'
            && self.buf[p + 2 + n.len()] == b':';
        if ok {
            self.pos += n.len() + 3;
            Ok(())
        } else {
            let end = (p + n.len() + 3).min(self.buf.len());
            self.err(p, end, format!("expected key \"{name}\""))
        }
    }

    /// The raw token up to the next `,`, `}` or `]` (exclusive).
    fn number_token(&mut self) -> (usize, usize, &'a [u8]) {
        let start = self.pos;
        let rel = self.buf[start..]
            .iter()
            .position(|b| matches!(b, b',' | b'}' | b']'))
            .unwrap_or(self.buf.len() - start);
        self.pos = start + rel;
        (start, start + rel, &self.buf[start..start + rel])
    }

    fn u64_value(&mut self) -> Result<(u64, (usize, usize))> {
        let (s, e, tok) = self.number_token();
        match parse_u64(tok) {
            Some(v) => Ok((v, (s, e))),
            None => self.err(s, e, "invalid unsigned integer"),
        }
    }

    fn bounded_u64(&mut self, max: u64, what: &str) -> Result<u64> {
        let (v, (s, e)) = self.u64_value()?;
        if v > max {
            return self.err(s, e, format!("{what} out of range (max {max})"));
        }
        Ok(v)
    }

    fn f64_value(&mut self) -> Result<f64> {
        let (s, e, tok) = self.number_token();
        match parse_f64(tok) {
            Some(v) => Ok(v),
            None => self.err(s, e, "invalid number"),
        }
    }

    fn bool_value(&mut self) -> Result<bool> {
        if self.buf[self.pos..].starts_with(b"true") {
            self.pos += 4;
            Ok(true)
        } else if self.buf[self.pos..].starts_with(b"false") {
            self.pos += 5;
            Ok(false)
        } else {
            let end = (self.pos + 5).min(self.buf.len());
            self.err(self.pos, end, "expected boolean")
        }
    }

    fn take_null(&mut self) -> bool {
        if self.buf[self.pos..].starts_with(b"null") {
            self.pos += 4;
            true
        } else {
            false
        }
    }

    fn opt_bounded_u64(&mut self, max: u64, what: &str) -> Result<Option<u64>> {
        if self.take_null() {
            Ok(None)
        } else {
            self.bounded_u64(max, what).map(Some)
        }
    }

    /// `-1` (root sentinel) or a pre-order parent index.
    fn parent_value(&mut self) -> Result<(Option<usize>, (usize, usize))> {
        let (s, e, tok) = self.number_token();
        if tok == b"-1" {
            return Ok((None, (s, e)));
        }
        match parse_u64(tok) {
            Some(v) => Ok((Some(v as usize), (s, e))),
            None => self.err(s, e, "invalid parent index"),
        }
    }

    /// Raw string token: `(start, end, contents-between-quotes, had_escapes)`.
    /// `start..end` spans the quotes inclusively.
    fn string_token(&mut self) -> Result<(usize, usize, &'a [u8], bool)> {
        let start = self.pos;
        if self.peek() != Some(b'"') {
            return self.err(start, start + 1, "expected string");
        }
        let mut i = start + 1;
        let mut escaped = false;
        while i < self.buf.len() {
            match self.buf[i] {
                b'"' => {
                    self.pos = i + 1;
                    return Ok((start, i + 1, &self.buf[start + 1..i], escaped));
                }
                b'\\' => {
                    escaped = true;
                    i += 2;
                }
                _ => i += 1,
            }
        }
        self.err(start, self.buf.len(), "unterminated string")
    }

    /// Decode a string value to an owned `String`, validating UTF-8 and escape
    /// sequences; errors span the full quoted token.
    fn string_value(&mut self) -> Result<String> {
        let (start, end, raw, escaped) = self.string_token()?;
        if !escaped {
            return match std::str::from_utf8(raw) {
                Ok(s) => Ok(s.to_string()),
                Err(_) => self.err(start, end, "invalid UTF-8 in string"),
            };
        }
        let mut bytes = Vec::with_capacity(raw.len());
        let mut i = 0;
        while i < raw.len() {
            if raw[i] != b'\\' {
                bytes.push(raw[i]);
                i += 1;
                continue;
            }
            match raw.get(i + 1) {
                Some(b'"') => bytes.push(b'"'),
                Some(b'\\') => bytes.push(b'\\'),
                Some(b'/') => bytes.push(b'/'),
                Some(b'n') => bytes.push(b'\n'),
                Some(b't') => bytes.push(b'\t'),
                Some(b'r') => bytes.push(b'\r'),
                Some(b'u') => {
                    let hex = raw
                        .get(i + 2..i + 6)
                        .and_then(|h| std::str::from_utf8(h).ok())
                        .and_then(|h| u32::from_str_radix(h, 16).ok());
                    let c = hex.and_then(char::from_u32);
                    match c {
                        Some(c) => {
                            let mut utf8 = [0u8; 4];
                            bytes.extend_from_slice(c.encode_utf8(&mut utf8).as_bytes());
                            i += 6;
                            continue;
                        }
                        None => return self.err(start, end, "invalid \\u escape"),
                    }
                }
                _ => return self.err(start, end, "invalid escape sequence"),
            }
            i += 2;
        }
        match String::from_utf8(bytes) {
            Ok(s) => Ok(s),
            Err(_) => self.err(start, end, "invalid UTF-8 in string"),
        }
    }

    /// `["a","b",...]` of strings.
    fn string_array(&mut self) -> Result<Vec<String>> {
        self.expect(b"[", "'['")?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            out.push(self.string_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return self.err(self.pos, self.pos + 1, "expected ',' or ']'"),
            }
        }
    }

    /// Variable-length `[1,2.5,...]` of numbers.
    fn f64_array(&mut self) -> Result<Vec<f64>> {
        self.expect(b"[", "'['")?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            out.push(self.f64_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return self.err(self.pos, self.pos + 1, "expected ',' or ']'"),
            }
        }
    }

    /// Exactly-four-element stats array.
    fn stats_value(&mut self) -> Result<OpStats> {
        self.expect(b"[", "'['")?;
        let input_cardinality = self.f64_value()?;
        self.expect(b",", "','")?;
        let base_cardinality = self.f64_value()?;
        self.expect(b",", "','")?;
        let output_cardinality = self.f64_value()?;
        self.expect(b",", "','")?;
        let avg_row_bytes = self.f64_value()?;
        self.expect(b"]", "']'")?;
        Ok(OpStats {
            input_cardinality,
            base_cardinality,
            output_cardinality,
            avg_row_bytes,
        })
    }
}

// ---------------------------------------------------------------------------
// NDJSON reader
// ---------------------------------------------------------------------------

/// One operator as parsed off the wire, before tree assembly.
struct OpShell {
    parent: Option<usize>,
    parent_span: (usize, usize),
    node: PhysicalNode,
    run: Option<(f64, usize)>,
}

fn kind_from_bytes(raw: &[u8]) -> Option<PhysicalOpKind> {
    PhysicalOpKind::all()
        .iter()
        .copied()
        .find(|k| k.name().as_bytes() == raw)
}

fn parse_op(p: &mut LineParser) -> Result<OpShell> {
    p.expect(b"{", "'{'")?;
    p.key("parent")?;
    let (parent, parent_span) = p.parent_value()?;
    p.expect(b",", "','")?;
    p.key("kind")?;
    let (ks, ke, kraw, _) = p.string_token()?;
    let Some(kind) = kind_from_bytes(kraw) else {
        return p.err(ks, ke, "unknown operator kind");
    };
    p.expect(b",", "','")?;
    p.key("label")?;
    let label = p.string_value()?;
    p.expect(b",", "','")?;
    p.key("partitions")?;
    let (partitions, _) = p.u64_value()?;
    p.expect(b",", "','")?;
    p.key("part_on")?;
    let partitioned_on = p.string_array()?;
    p.expect(b",", "','")?;
    p.key("sort_on")?;
    let sorted_on = p.string_array()?;
    p.expect(b",", "','")?;
    p.key("udf")?;
    let udf_cost_factor = p.f64_value()?;
    p.expect(b",", "','")?;
    p.key("est")?;
    let est = p.stats_value()?;
    p.expect(b",", "','")?;
    p.key("act")?;
    let act = p.stats_value()?;
    p.expect(b",", "','")?;
    p.key("run")?;
    let run = if p.take_null() {
        None
    } else {
        p.expect(b"[", "'['")?;
        let exclusive = p.f64_value()?;
        p.expect(b",", "','")?;
        let (parts, _) = p.u64_value()?;
        p.expect(b"]", "']'")?;
        Some((exclusive, parts as usize))
    };
    p.expect(b"}", "'}'")?;

    let mut node = PhysicalNode::new(kind, label, vec![]);
    node.est = est;
    node.act = act;
    node.partition_count = partitions as usize;
    node.partitioned_on = partitioned_on;
    node.sorted_on = sorted_on;
    node.udf_cost_factor = udf_cost_factor;
    Ok(OpShell {
        parent,
        parent_span,
        node,
        run,
    })
}

/// Validate parent indices and rebuild the operator tree from pre-order
/// shells.  Shared by the NDJSON and binary readers; `line` and the stored
/// parent spans keep the error reporting format-accurate.
fn assemble_plan(
    line: usize,
    meta: JobMeta,
    ops: Vec<OpShell>,
) -> Result<(PhysicalPlan, BTreeMap<OpId, OperatorRun>)> {
    let fail = |span: (usize, usize), msg: String| CleoError::Parse {
        line,
        start: span.0,
        end: span.1.max(span.0 + 1),
        msg,
    };
    if ops.is_empty() {
        return Err(fail((0, 1), "job has no operators".into()));
    }
    let mut children_of: Vec<Vec<usize>> = vec![Vec::new(); ops.len()];
    for (i, op) in ops.iter().enumerate() {
        match (i, op.parent) {
            (0, None) => {}
            (0, Some(_)) => {
                return Err(fail(
                    op.parent_span,
                    "root operator must have parent -1".into(),
                ))
            }
            (_, None) => {
                return Err(fail(
                    op.parent_span,
                    format!("operator {i} is a second root (parent -1)"),
                ))
            }
            (_, Some(parent)) if parent >= i => {
                return Err(fail(
                    op.parent_span,
                    format!(
                        "operator {i} references parent {parent}, not an earlier pre-order index"
                    ),
                ))
            }
            (_, Some(parent)) => children_of[parent].push(i),
        }
    }

    let mut runs = BTreeMap::new();
    let mut shells: Vec<Option<PhysicalNode>> = Vec::with_capacity(ops.len());
    for (i, op) in ops.into_iter().enumerate() {
        if let Some((exclusive_seconds, partition_count)) = op.run {
            runs.insert(
                OpId(i),
                OperatorRun {
                    op: OpId(i),
                    exclusive_seconds,
                    partition_count,
                },
            );
        }
        shells.push(Some(op.node));
    }

    fn build(
        idx: usize,
        shells: &mut Vec<Option<PhysicalNode>>,
        children_of: &[Vec<usize>],
    ) -> PhysicalNode {
        let children: Vec<PhysicalNode> = children_of[idx]
            .iter()
            .map(|&c| build(c, shells, children_of))
            .collect();
        let mut shell = shells[idx]
            .take()
            .expect("each op is assembled exactly once");
        let mut node = PhysicalNode::new(shell.kind, std::mem::take(&mut shell.label), children);
        node.est = shell.est;
        node.act = shell.act;
        node.partition_count = shell.partition_count;
        node.partitioned_on = std::mem::take(&mut shell.partitioned_on);
        node.sorted_on = std::mem::take(&mut shell.sorted_on);
        node.udf_cost_factor = shell.udf_cost_factor;
        node
    }
    let root = build(0, &mut shells, &children_of);
    // Pre-order id assignment matches the emitted pre-order indices, so the
    // rebuilt `operator_runs` keys line up with the rebuilt plan's ids.
    Ok((PhysicalPlan::new(meta, root), runs))
}

/// Parse one NDJSON line into a job; also returns the byte span of the `day`
/// token so callers can report cross-record day-order violations precisely.
fn parse_job(line_no: usize, line: &[u8]) -> Result<(JobTelemetry, (usize, usize))> {
    let mut p = LineParser::new(line_no, line);
    p.expect(b"{", "'{'")?;
    p.key("job")?;
    let (job_id, _) = p.u64_value()?;
    p.expect(b",", "','")?;
    p.key("cluster")?;
    let cluster = p.bounded_u64(u8::MAX as u64, "cluster id")?;
    p.expect(b",", "','")?;
    p.key("day")?;
    let (day, day_span) = p.u64_value()?;
    if day > u32::MAX as u64 {
        return p.err(day_span.0, day_span.1, "day index out of range");
    }
    p.expect(b",", "','")?;
    p.key("template")?;
    let template = p.opt_bounded_u64(u64::MAX, "template id")?;
    p.expect(b",", "','")?;
    p.key("recurring")?;
    let recurring = p.bool_value()?;
    p.expect(b",", "','")?;
    p.key("name")?;
    let name = p.string_value()?;
    p.expect(b",", "','")?;
    p.key("inputs")?;
    let normalized_inputs = p.string_array()?;
    p.expect(b",", "','")?;
    p.key("params")?;
    let params = p.f64_array()?;
    p.expect(b",", "','")?;
    p.key("epoch")?;
    let epoch = p.bounded_u64(u32::MAX as u64, "epoch")?;
    p.expect(b",", "','")?;
    p.key("model_version")?;
    let (model_version, _) = p.u64_value()?;
    p.expect(b",", "','")?;
    p.key("model_cluster")?;
    let model_cluster = p.opt_bounded_u64(u8::MAX as u64, "model cluster id")?;
    p.expect(b",", "','")?;
    p.key("delta_base")?;
    let delta_base = p.opt_bounded_u64(u64::MAX, "delta base")?;
    p.expect(b",", "','")?;
    p.key("latency")?;
    let job_latency = p.f64_value()?;
    p.expect(b",", "','")?;
    p.key("cpu")?;
    let total_cpu_seconds = p.f64_value()?;
    p.expect(b",", "','")?;
    p.key("containers")?;
    let (peak_containers, _) = p.u64_value()?;
    p.expect(b",", "','")?;
    p.key("ops")?;
    p.expect(b"[", "'['")?;
    let mut ops = Vec::new();
    if p.peek() == Some(b']') {
        p.pos += 1;
    } else {
        loop {
            ops.push(parse_op(&mut p)?);
            match p.peek() {
                Some(b',') => p.pos += 1,
                Some(b']') => {
                    p.pos += 1;
                    break;
                }
                _ => return p.err(p.pos, p.pos + 1, "expected ',' or ']' after operator"),
            }
        }
    }
    p.expect(b"}", "'}'")?;
    if p.pos != line.len() {
        return p.err(p.pos, line.len(), "trailing bytes after record");
    }

    let meta = JobMeta {
        id: JobId(job_id),
        cluster: ClusterId(cluster as u8),
        template: template.map(TemplateId),
        name,
        normalized_inputs,
        params,
        day: DayIndex(day as u32),
        recurring,
    };
    let provenance = ModelProvenance {
        epoch: epoch as u32,
        model_version,
        model_cluster: model_cluster.map(|c| ClusterId(c as u8)),
        delta_base,
    };
    let (plan, operator_runs) = assemble_plan(line_no, meta, ops)?;
    let run = JobRun {
        operator_runs,
        job_latency,
        total_cpu_seconds,
        peak_containers: peak_containers as usize,
    };
    Ok((
        JobTelemetry::with_provenance(plan, run, provenance),
        day_span,
    ))
}

fn day_order_error(line: usize, span: (usize, usize), day: u32, prev: u32) -> CleoError {
    CleoError::Parse {
        line,
        start: span.0,
        end: span.1.max(span.0 + 1),
        msg: format!("out-of-order day {day}: an earlier record already reached day {prev}"),
    }
}

/// Parse an NDJSON telemetry buffer, numbering lines from `first_line`.
///
/// The offset exists for the parallel reader in `cleo-core`, which hands each
/// worker a newline-aligned chunk plus its absolute starting line number so
/// error reports stay buffer-absolute.  Day-order is enforced **within** the
/// buffer; cross-chunk order is the caller's to check (see
/// [`ndjson_line_day`]).
pub fn read_ndjson_at(buf: &[u8], first_line: usize) -> Result<TelemetryLog> {
    let mut jobs = Vec::new();
    let mut prev_day: Option<u32> = None;
    for (local_line, _offset, line) in Lines::new(buf) {
        if line.is_empty() {
            continue;
        }
        let line_no = first_line + local_line - 1;
        let (job, day_span) = parse_job(line_no, line)?;
        let day = job.day().0;
        if let Some(prev) = prev_day {
            if day < prev {
                return Err(day_order_error(line_no, day_span, day, prev));
            }
        }
        prev_day = Some(day);
        jobs.push(job);
    }
    Ok(TelemetryLog::from_jobs(jobs))
}

/// Parse an NDJSON telemetry buffer (one job per line, day-ordered).
pub fn read_ndjson(buf: &[u8]) -> Result<TelemetryLog> {
    read_ndjson_at(buf, 1)
}

// ---------------------------------------------------------------------------
// NDJSON validation scan (allocation-free)
// ---------------------------------------------------------------------------

/// What a validation scan of a firehose buffer found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanSummary {
    /// Records (non-empty lines) in the buffer.
    pub jobs: usize,
    /// Total operators across all records.
    pub operators: usize,
    /// Day of the last record, if any.
    pub newest_day: Option<u32>,
}

/// Skip one JSON value generically, validating structure and string UTF-8,
/// without allocating.  Returns the value's byte span.
fn skip_value(p: &mut LineParser) -> Result<(usize, usize)> {
    let start = p.pos;
    match p.peek() {
        Some(b'"') => {
            let (s, e, raw, _) = p.string_token()?;
            if std::str::from_utf8(raw).is_err() {
                return p.err(s, e, "invalid UTF-8 in string");
            }
            Ok((s, e))
        }
        Some(b'[') => {
            p.pos += 1;
            if p.peek() == Some(b']') {
                p.pos += 1;
                return Ok((start, p.pos));
            }
            loop {
                skip_value(p)?;
                match p.peek() {
                    Some(b',') => p.pos += 1,
                    Some(b']') => {
                        p.pos += 1;
                        return Ok((start, p.pos));
                    }
                    _ => return p.err(p.pos, p.pos + 1, "expected ',' or ']'"),
                }
            }
        }
        Some(b'{') => {
            p.pos += 1;
            if p.peek() == Some(b'}') {
                p.pos += 1;
                return Ok((start, p.pos));
            }
            loop {
                let (s, e, raw, _) = p.string_token()?;
                if std::str::from_utf8(raw).is_err() {
                    return p.err(s, e, "invalid UTF-8 in string");
                }
                p.expect(b":", "':'")?;
                skip_value(p)?;
                match p.peek() {
                    Some(b',') => p.pos += 1,
                    Some(b'}') => {
                        p.pos += 1;
                        return Ok((start, p.pos));
                    }
                    _ => return p.err(p.pos, p.pos + 1, "expected ',' or '}'"),
                }
            }
        }
        Some(b't') => p.expect(b"true", "boolean").map(|_| (start, p.pos)),
        Some(b'f') => p.expect(b"false", "boolean").map(|_| (start, p.pos)),
        Some(b'n') => p.expect(b"null", "null").map(|_| (start, p.pos)),
        _ => {
            let (s, e, tok) = p.number_token();
            if parse_f64(tok).is_none() {
                return p.err(s, e, "invalid number");
            }
            Ok((s, e))
        }
    }
}

/// Scan one line: day (with span) plus the record's operator count.
fn scan_line(line_no: usize, line: &[u8]) -> Result<(u32, (usize, usize), usize)> {
    let mut p = LineParser::new(line_no, line);
    p.expect(b"{", "'{'")?;
    let mut day: Option<(u32, (usize, usize))> = None;
    let mut operators = 0usize;
    loop {
        let (ks, ke, kraw, escaped) = p.string_token()?;
        if std::str::from_utf8(kraw).is_err() {
            return p.err(ks, ke, "invalid UTF-8 in key");
        }
        p.expect(b":", "':'")?;
        if !escaped && kraw == b"day" {
            let (v, span) = p.u64_value()?;
            if v > u32::MAX as u64 {
                return p.err(span.0, span.1, "day index out of range");
            }
            day = Some((v as u32, span));
        } else if !escaped && kraw == b"ops" {
            p.expect(b"[", "'['")?;
            if p.peek() == Some(b']') {
                p.pos += 1;
            } else {
                loop {
                    skip_value(&mut p)?;
                    operators += 1;
                    match p.peek() {
                        Some(b',') => p.pos += 1,
                        Some(b']') => {
                            p.pos += 1;
                            break;
                        }
                        _ => return p.err(p.pos, p.pos + 1, "expected ',' or ']'"),
                    }
                }
            }
        } else {
            skip_value(&mut p)?;
        }
        match p.peek() {
            Some(b',') => p.pos += 1,
            Some(b'}') => {
                p.pos += 1;
                break;
            }
            _ => return p.err(p.pos, p.pos + 1, "expected ',' or '}'"),
        }
    }
    if p.pos != line.len() {
        return p.err(p.pos, line.len(), "trailing bytes after record");
    }
    match day {
        Some((d, span)) => Ok((d, span, operators)),
        None => p.err(0, line.len(), "record has no \"day\" field"),
    }
}

/// Validate an NDJSON firehose buffer without materializing anything: checks
/// record structure, string UTF-8, and day order, and counts records and
/// operators.  Allocation-free — this is the steady-state "is the stream
/// healthy" pass a tailer can run at wire speed.
pub fn scan_ndjson(buf: &[u8]) -> Result<ScanSummary> {
    let mut summary = ScanSummary::default();
    let mut prev_day: Option<u32> = None;
    for (line_no, _offset, line) in Lines::new(buf) {
        if line.is_empty() {
            continue;
        }
        let (day, day_span, operators) = scan_line(line_no, line)?;
        if let Some(prev) = prev_day {
            if day < prev {
                return Err(day_order_error(line_no, day_span, day, prev));
            }
        }
        prev_day = Some(day);
        summary.jobs += 1;
        summary.operators += operators;
        summary.newest_day = Some(day);
    }
    Ok(summary)
}

/// Day (and its byte span) of a single NDJSON record — the cross-chunk
/// day-order probe used by the parallel reader.
pub fn ndjson_line_day(line_no: usize, line: &[u8]) -> Result<(DayIndex, (usize, usize))> {
    let (day, span, _) = scan_line(line_no, line)?;
    Ok((DayIndex(day), span))
}

// ---------------------------------------------------------------------------
// Compact binary codec
// ---------------------------------------------------------------------------

/// Magic prefix of the compact binary telemetry format.
pub const BINARY_MAGIC: [u8; 4] = *b"CLT1";

/// Byte span of the `day` field within every binary record payload (fixed
/// layout: u64 job id, u8 cluster, then u32 day).
pub const BINARY_DAY_SPAN: (usize, usize) = (9, 13);

fn put_strs(out: &mut Vec<u8>, ss: &[String]) {
    put_u32(out, ss.len() as u32);
    for s in ss {
        put_str(out, s);
    }
}

fn put_stats(out: &mut Vec<u8>, s: &OpStats) {
    put_f64(out, s.input_cardinality);
    put_f64(out, s.base_cardinality);
    put_f64(out, s.output_cardinality);
    put_f64(out, s.avg_row_bytes);
}

fn encode_job(job: &JobTelemetry, out: &mut Vec<u8>) {
    let m = &job.plan.meta;
    put_u64(out, m.id.0);
    out.push(m.cluster.0);
    put_u32(out, m.day.0);
    match m.template {
        Some(t) => {
            out.push(1);
            put_u64(out, t.0);
        }
        None => out.push(0),
    }
    out.push(m.recurring as u8);
    put_str(out, &m.name);
    put_strs(out, &m.normalized_inputs);
    put_u32(out, m.params.len() as u32);
    for &p in &m.params {
        put_f64(out, p);
    }
    let prov = &job.provenance;
    put_u32(out, prov.epoch);
    put_u64(out, prov.model_version);
    match prov.model_cluster {
        Some(c) => {
            out.push(1);
            out.push(c.0);
        }
        None => out.push(0),
    }
    match prov.delta_base {
        Some(v) => {
            out.push(1);
            put_u64(out, v);
        }
        None => out.push(0),
    }
    put_f64(out, job.run.job_latency);
    put_f64(out, job.run.total_cpu_seconds);
    put_u32(out, job.run.peak_containers as u32);
    let ops = preorder_with_parents(&job.plan.root);
    put_u32(out, ops.len() as u32);
    for (node, parent) in ops {
        put_u32(out, parent.map_or(0, |p| p as u32 + 1));
        let code = PhysicalOpKind::all()
            .iter()
            .position(|k| *k == node.kind)
            .expect("every kind is in all()") as u8;
        out.push(code);
        put_str(out, &node.label);
        put_u32(out, node.partition_count as u32);
        put_strs(out, &node.partitioned_on);
        put_strs(out, &node.sorted_on);
        put_f64(out, node.udf_cost_factor);
        put_stats(out, &node.est);
        put_stats(out, &node.act);
        match job.run.operator_runs.get(&node.id) {
            Some(r) => {
                out.push(1);
                put_f64(out, r.exclusive_seconds);
                put_u32(out, r.partition_count as u32);
            }
            None => out.push(0),
        }
    }
}

/// Serialize a whole log to the compact binary format: magic, record count,
/// then length-prefixed records.
pub fn write_binary(log: &TelemetryLog) -> Vec<u8> {
    let mut out = wire::frame_header(BINARY_MAGIC, log.len());
    for job in log.jobs() {
        wire::with_record(&mut out, |out| encode_job(job, out));
    }
    out
}

/// Little-endian cursor over one binary record payload, with the same
/// span-exact error reporting as the NDJSON parser (`line` = record number,
/// spans relative to the payload start).
struct BinCursor<'a> {
    record: usize,
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BinCursor<'a> {
    fn err<T>(&self, start: usize, end: usize, msg: impl Into<String>) -> Result<T> {
        Err(CleoError::Parse {
            line: self.record,
            start,
            end: end.max(start + 1),
            msg: msg.into(),
        })
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.pos + n <= self.buf.len() {
            let s = &self.buf[self.pos..self.pos + n];
            self.pos += n;
            Ok(s)
        } else {
            self.err(
                self.pos,
                self.buf.len(),
                format!("truncated record: {n} bytes needed for {what}"),
            )
        }
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn string(&mut self, what: &str) -> Result<String> {
        let len = self.u32(what)? as usize;
        let start = self.pos;
        let raw = self.take(len, what)?;
        match std::str::from_utf8(raw) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => self.err(start, start + len, format!("invalid UTF-8 in {what}")),
        }
    }

    fn strings(&mut self, what: &str) -> Result<Vec<String>> {
        let n = self.u32(what)? as usize;
        if n > self.buf.len() {
            // Each string needs at least its length prefix; an absurd count is
            // a corrupt record, not a huge allocation request.
            return self.err(
                self.pos - 4,
                self.pos,
                format!("implausible {what} count {n}"),
            );
        }
        (0..n).map(|_| self.string(what)).collect()
    }

    fn stats(&mut self, what: &str) -> Result<OpStats> {
        Ok(OpStats {
            input_cardinality: self.f64(what)?,
            base_cardinality: self.f64(what)?,
            output_cardinality: self.f64(what)?,
            avg_row_bytes: self.f64(what)?,
        })
    }

    fn flag(&mut self, what: &str) -> Result<bool> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            v => self.err(self.pos - 1, self.pos, format!("invalid {what} flag {v}")),
        }
    }
}

/// Decode one binary record payload into a job.  `record` is the 1-based
/// record number used in error reports.
pub fn decode_binary_record(record: usize, payload: &[u8]) -> Result<JobTelemetry> {
    let mut c = BinCursor {
        record,
        buf: payload,
        pos: 0,
    };
    let job_id = c.u64("job id")?;
    let cluster = c.u8("cluster id")?;
    let day = c.u32("day")?;
    let template = if c.flag("template presence")? {
        Some(TemplateId(c.u64("template id")?))
    } else {
        None
    };
    let recurring = c.flag("recurring")?;
    let name = c.string("job name")?;
    let normalized_inputs = c.strings("inputs")?;
    let n_params = c.u32("param count")? as usize;
    if n_params > payload.len() {
        return c.err(
            c.pos - 4,
            c.pos,
            format!("implausible param count {n_params}"),
        );
    }
    let params = (0..n_params)
        .map(|_| c.f64("param"))
        .collect::<Result<Vec<f64>>>()?;
    let epoch = c.u32("epoch")?;
    let model_version = c.u64("model version")?;
    let model_cluster = if c.flag("model cluster presence")? {
        Some(ClusterId(c.u8("model cluster")?))
    } else {
        None
    };
    let delta_base = if c.flag("delta base presence")? {
        Some(c.u64("delta base")?)
    } else {
        None
    };
    let job_latency = c.f64("job latency")?;
    let total_cpu_seconds = c.f64("cpu seconds")?;
    let peak_containers = c.u32("peak containers")? as usize;
    let n_ops = c.u32("operator count")? as usize;
    if n_ops > payload.len() {
        return c.err(
            c.pos - 4,
            c.pos,
            format!("implausible operator count {n_ops}"),
        );
    }
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        let parent_start = c.pos;
        let parent_raw = c.u32("parent index")?;
        let parent = if parent_raw == 0 {
            None
        } else {
            Some(parent_raw as usize - 1)
        };
        let kind_at = c.pos;
        let code = c.u8("operator kind")? as usize;
        let Some(&kind) = PhysicalOpKind::all().get(code) else {
            return c.err(
                kind_at,
                kind_at + 1,
                format!("unknown operator kind code {code}"),
            );
        };
        let label = c.string("operator label")?;
        let partition_count = c.u32("partition count")? as usize;
        let partitioned_on = c.strings("partition columns")?;
        let sorted_on = c.strings("sort columns")?;
        let udf_cost_factor = c.f64("udf factor")?;
        let est = c.stats("estimated stats")?;
        let act = c.stats("actual stats")?;
        let run = if c.flag("run presence")? {
            let exclusive = c.f64("exclusive seconds")?;
            let parts = c.u32("run partitions")? as usize;
            Some((exclusive, parts))
        } else {
            None
        };
        let mut node = PhysicalNode::new(kind, label, vec![]);
        node.est = est;
        node.act = act;
        node.partition_count = partition_count;
        node.partitioned_on = partitioned_on;
        node.sorted_on = sorted_on;
        node.udf_cost_factor = udf_cost_factor;
        ops.push(OpShell {
            parent,
            parent_span: (parent_start, parent_start + 4),
            node,
            run,
        });
    }
    if c.pos != payload.len() {
        return c.err(c.pos, payload.len(), "trailing bytes in record");
    }

    let meta = JobMeta {
        id: JobId(job_id),
        cluster: ClusterId(cluster),
        template,
        name,
        normalized_inputs,
        params,
        day: DayIndex(day),
        recurring,
    };
    let provenance = ModelProvenance {
        epoch,
        model_version,
        model_cluster,
        delta_base,
    };
    let (plan, operator_runs) = assemble_plan(record, meta, ops)?;
    let run = JobRun {
        operator_runs,
        job_latency,
        total_cpu_seconds,
        peak_containers,
    };
    Ok(JobTelemetry::with_provenance(plan, run, provenance))
}

/// Walk a binary buffer's framing and return each record's payload slice.
/// Validates the magic, the record count, and every length prefix; errors use
/// the record number and buffer-absolute spans.
pub fn binary_record_payloads(buf: &[u8]) -> Result<Vec<&[u8]>> {
    wire::record_payloads(buf, BINARY_MAGIC, "binary telemetry")
}

/// Parse a compact-binary telemetry buffer (day-ordered records).
pub fn read_binary(buf: &[u8]) -> Result<TelemetryLog> {
    let payloads = binary_record_payloads(buf)?;
    let mut jobs = Vec::with_capacity(payloads.len());
    let mut prev_day: Option<u32> = None;
    for (i, payload) in payloads.iter().enumerate() {
        let record = i + 1;
        let job = decode_binary_record(record, payload)?;
        let day = job.day().0;
        if let Some(prev) = prev_day {
            if day < prev {
                return Err(day_order_error(record, BINARY_DAY_SPAN, day, prev));
            }
        }
        prev_day = Some(day);
        jobs.push(job);
    }
    Ok(TelemetryLog::from_jobs(jobs))
}

// ---------------------------------------------------------------------------
// Trace-event NDJSON
// ---------------------------------------------------------------------------

/// Append one observability [`TraceEvent`] as a single NDJSON line (no
/// trailing newline).
///
/// Canonical field order — the strict reader requires exactly this order.
/// Every line starts `seq, kind`; the remaining fields depend on the kind:
///
/// * `admission`: `shard, verdict` (`admitted` / `delayed` / `shed`)
/// * `batch`: `shard, jobs`
/// * `route`: `cluster, outcome` (`own` / `donor` / `fallback`), `version`
/// * `breaker`: `cluster, state` (`closed` / `open` / `half_open`)
/// * `publish`: `cluster` (`null` for unsharded registries), `lineage`
///   (`epoch` / `delta` / `rollback`), `version`
/// * `watchdog`: `cluster, verdict` (`healthy` / `rolled_back`), `version`
/// * `quarantine`: `record, line`
///
/// Tag strings are fixed identifiers, so no escaping is required and
/// round-trips are byte-exact.
pub fn append_event_ndjson(event: &TraceEvent, out: &mut String) {
    let _ = write!(
        out,
        "{{\"seq\":{},\"kind\":\"{}\",",
        event.seq(),
        event.kind()
    );
    match *event {
        TraceEvent::Admission { shard, verdict, .. } => {
            let _ = write!(
                out,
                "\"shard\":{shard},\"verdict\":\"{}\"",
                verdict.as_str()
            );
        }
        TraceEvent::Batch { shard, jobs, .. } => {
            let _ = write!(out, "\"shard\":{shard},\"jobs\":{jobs}");
        }
        TraceEvent::Route {
            cluster,
            outcome,
            version,
            ..
        } => {
            let _ = write!(
                out,
                "\"cluster\":{cluster},\"outcome\":\"{}\",\"version\":{version}",
                outcome.as_str()
            );
        }
        TraceEvent::Breaker { cluster, state, .. } => {
            let _ = write!(
                out,
                "\"cluster\":{cluster},\"state\":\"{}\"",
                state.as_str()
            );
        }
        TraceEvent::Publish {
            cluster,
            lineage,
            version,
            ..
        } => {
            match cluster {
                NO_CLUSTER => out.push_str("\"cluster\":null,"),
                c => {
                    let _ = write!(out, "\"cluster\":{c},");
                }
            }
            let _ = write!(
                out,
                "\"lineage\":\"{}\",\"version\":{version}",
                lineage.as_str()
            );
        }
        TraceEvent::Watchdog {
            cluster,
            verdict,
            version,
            ..
        } => {
            let _ = write!(
                out,
                "\"cluster\":{cluster},\"verdict\":\"{}\",\"version\":{version}",
                verdict.as_str()
            );
        }
        TraceEvent::Quarantine { record, line, .. } => {
            let _ = write!(out, "\"record\":{record},\"line\":{line}");
        }
    }
    out.push('}');
}

/// Serialize a drained trace as NDJSON, one event per line, trailing newline
/// on every record.
pub fn write_events_ndjson(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for event in events {
        append_event_ndjson(event, &mut out);
        out.push('\n');
    }
    out
}

/// A fixed lowercase tag (`"admitted"`, `"open"`, ...), decoded through the
/// kind's `parse`; the error spans the full quoted token.
fn event_tag<T>(p: &mut LineParser, parse: fn(&str) -> Option<T>, what: &str) -> Result<T> {
    let (s, e, raw, _) = p.string_token()?;
    match std::str::from_utf8(raw).ok().and_then(parse) {
        Some(v) => Ok(v),
        None => p.err(s, e, format!("unknown {what}")),
    }
}

/// A cluster field: `null` (unsharded) or a bounded integer.
fn event_cluster(p: &mut LineParser) -> Result<u16> {
    Ok(p.opt_bounded_u64(u64::from(NO_CLUSTER) - 1, "cluster")?
        .map_or(NO_CLUSTER, |c| c as u16))
}

/// Parse one trace-event line (exact inverse of [`append_event_ndjson`]).
fn parse_event(line_no: usize, line: &[u8]) -> Result<TraceEvent> {
    let mut p = LineParser::new(line_no, line);
    p.expect(b"{", "'{'")?;
    p.key("seq")?;
    let (seq, _) = p.u64_value()?;
    p.expect(b",", "','")?;
    p.key("kind")?;
    let (ks, ke, kind_raw, _) = p.string_token()?;
    p.expect(b",", "','")?;
    let event = match kind_raw {
        b"admission" => {
            p.key("shard")?;
            let shard = p.bounded_u64(u64::from(u16::MAX), "shard")? as u16;
            p.expect(b",", "','")?;
            p.key("verdict")?;
            let verdict = event_tag(&mut p, AdmissionKind::parse, "admission verdict")?;
            TraceEvent::Admission {
                seq,
                shard,
                verdict,
            }
        }
        b"batch" => {
            p.key("shard")?;
            let shard = p.bounded_u64(u64::from(u16::MAX), "shard")? as u16;
            p.expect(b",", "','")?;
            p.key("jobs")?;
            let jobs = p.bounded_u64(u64::from(u32::MAX), "batch size")? as u32;
            TraceEvent::Batch { seq, shard, jobs }
        }
        b"route" => {
            p.key("cluster")?;
            let cluster = event_cluster(&mut p)?;
            p.expect(b",", "','")?;
            p.key("outcome")?;
            let outcome = event_tag(&mut p, RouteKind::parse, "route outcome")?;
            p.expect(b",", "','")?;
            p.key("version")?;
            let (version, _) = p.u64_value()?;
            TraceEvent::Route {
                seq,
                cluster,
                outcome,
                version,
            }
        }
        b"breaker" => {
            p.key("cluster")?;
            let cluster = event_cluster(&mut p)?;
            p.expect(b",", "','")?;
            p.key("state")?;
            let state = event_tag(&mut p, BreakerKind::parse, "breaker state")?;
            TraceEvent::Breaker {
                seq,
                cluster,
                state,
            }
        }
        b"publish" => {
            p.key("cluster")?;
            let cluster = event_cluster(&mut p)?;
            p.expect(b",", "','")?;
            p.key("lineage")?;
            let lineage = event_tag(&mut p, PublishKind::parse, "publish lineage")?;
            p.expect(b",", "','")?;
            p.key("version")?;
            let (version, _) = p.u64_value()?;
            TraceEvent::Publish {
                seq,
                cluster,
                lineage,
                version,
            }
        }
        b"watchdog" => {
            p.key("cluster")?;
            let cluster = event_cluster(&mut p)?;
            p.expect(b",", "','")?;
            p.key("verdict")?;
            let verdict = event_tag(&mut p, WatchdogKind::parse, "watchdog verdict")?;
            p.expect(b",", "','")?;
            p.key("version")?;
            let (version, _) = p.u64_value()?;
            TraceEvent::Watchdog {
                seq,
                cluster,
                verdict,
                version,
            }
        }
        b"quarantine" => {
            p.key("record")?;
            let (record, _) = p.u64_value()?;
            p.expect(b",", "','")?;
            p.key("line")?;
            let (line, _) = p.u64_value()?;
            TraceEvent::Quarantine { seq, record, line }
        }
        _ => return p.err(ks, ke, "unknown event kind"),
    };
    p.expect(b"}", "'}'")?;
    if p.pos != line.len() {
        return p.err(p.pos, line.len(), "trailing bytes after event object");
    }
    Ok(event)
}

/// Parse a trace-event NDJSON buffer (one event per line).  Defects are
/// reported as [`CleoError::Parse`] with the 1-based line number and the
/// byte span of the offending token, like the telemetry reader.
pub fn read_events_ndjson(buf: &[u8]) -> Result<Vec<TraceEvent>> {
    let mut events = Vec::new();
    for (line_no, _offset, line) in Lines::new(buf) {
        if line.is_empty() {
            continue;
        }
        events.push(parse_event(line_no, line)?);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Simulator, SimulatorConfig};
    use crate::physical::PhysicalOpKind;

    fn sample_plan(job: u64, day: u32, cluster: u8) -> PhysicalPlan {
        let mut extract_a = PhysicalNode::new(PhysicalOpKind::Extract, "events_{date}", vec![]);
        extract_a.act = OpStats {
            input_cardinality: 2.5e6,
            base_cardinality: 2.5e6,
            output_cardinality: 2.5e6,
            avg_row_bytes: 48.0,
        };
        extract_a.est = extract_a.act;
        extract_a.partition_count = 16;
        extract_a.partitioned_on = vec!["uid".into()];
        let mut extract_b = PhysicalNode::new(PhysicalOpKind::Extract, "dim \"users\"", vec![]);
        extract_b.act = OpStats {
            input_cardinality: 1e4,
            base_cardinality: 1e4,
            output_cardinality: 1e4,
            avg_row_bytes: 96.5,
        };
        extract_b.est = extract_b.act;
        extract_b.partition_count = 4;
        let mut join = PhysicalNode::new(
            PhysicalOpKind::HashJoin,
            "uid=uid",
            vec![extract_a, extract_b],
        );
        join.est.output_cardinality = 2.4e6;
        join.act.output_cardinality = 2.6e6;
        join.partition_count = 16;
        let mut udf = PhysicalNode::new(PhysicalOpKind::Process, "Score\\v1", vec![join]);
        udf.udf_cost_factor = 3.5;
        udf.partition_count = 16;
        udf.sorted_on = vec!["score".into()];
        let mut out = PhysicalNode::new(PhysicalOpKind::Output, "sink", vec![udf]);
        out.partition_count = 1;
        let meta = JobMeta {
            id: JobId(job),
            cluster: ClusterId(cluster),
            template: if job.is_multiple_of(2) {
                Some(TemplateId(777))
            } else {
                None
            },
            name: format!("pipeline/daily score {job}"),
            normalized_inputs: vec!["events_{date}".into(), "users".into()],
            params: vec![0.25, 1e-9, 12345.0],
            day: DayIndex(day),
            recurring: true,
        };
        PhysicalPlan::new(meta, out)
    }

    fn sample_log() -> TelemetryLog {
        let sim = Simulator::new(SimulatorConfig::default());
        let mut log = TelemetryLog::new();
        for (job, day, cluster) in [(1u64, 3u32, 0u8), (2, 3, 1), (3, 4, 0), (4, 7, 2)] {
            let plan = sample_plan(job, day, cluster);
            let run = sim.run(&plan);
            let provenance = ModelProvenance {
                epoch: day,
                model_version: job * 3,
                model_cluster: if job == 2 { Some(ClusterId(1)) } else { None },
                delta_base: if job == 3 { Some(8) } else { None },
            };
            log.push(JobTelemetry::with_provenance(plan, run, provenance));
        }
        log
    }

    #[test]
    fn ndjson_round_trips_exactly() {
        let log = sample_log();
        let text = write_ndjson(&log);
        assert_eq!(text.lines().count(), log.len());
        let back = read_ndjson(text.as_bytes()).expect("round trip parses");
        assert_eq!(back, log);
        assert!(back.is_day_sorted());
        // Operator ids and runs line up after the rebuild.
        for (a, b) in back.jobs().iter().zip(log.jobs()) {
            assert_eq!(a.run, b.run);
            assert_eq!(a.provenance, b.provenance);
        }
    }

    #[test]
    fn binary_round_trips_exactly() {
        let log = sample_log();
        let bytes = write_binary(&log);
        assert_eq!(&bytes[..4], &BINARY_MAGIC);
        let back = read_binary(&bytes).expect("round trip parses");
        assert_eq!(back, log);
    }

    #[test]
    fn scan_matches_materializing_reader() {
        let log = sample_log();
        let text = write_ndjson(&log);
        let summary = scan_ndjson(text.as_bytes()).expect("scan passes");
        assert_eq!(summary.jobs, log.len());
        assert_eq!(
            summary.operators,
            log.jobs().iter().map(|j| j.plan.op_count()).sum::<usize>()
        );
        assert_eq!(summary.newest_day, Some(7));
        assert_eq!(scan_ndjson(b"").unwrap(), ScanSummary::default());
    }

    #[test]
    fn truncated_record_is_rejected_with_span() {
        let log = sample_log();
        let text = write_ndjson(&log);
        let first_line_len = text.lines().next().unwrap().len();
        // Cut the first record off mid-ops.
        let truncated = &text.as_bytes()[..first_line_len - 40];
        let err = read_ndjson(truncated).expect_err("truncated record must fail");
        match err {
            CleoError::Parse {
                line, start, end, ..
            } => {
                assert_eq!(line, 1);
                // An EOF error may span one byte past the cut.
                assert!(
                    start <= end && start <= first_line_len - 40,
                    "{start}..{end}"
                );
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        // The zero-alloc scanner rejects it too.
        assert!(matches!(
            scan_ndjson(truncated),
            Err(CleoError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn bad_utf8_is_rejected_with_the_string_span() {
        let log = sample_log();
        let mut bytes = write_ndjson(&log).into_bytes();
        // Corrupt a byte inside the first record's job name.
        let name_at = bytes
            .windows(7)
            .position(|w| w == b"\"name\":")
            .expect("name key present")
            + 8;
        bytes[name_at + 2] = 0xFF;
        let err = read_ndjson(&bytes).expect_err("bad UTF-8 must fail");
        match &err {
            CleoError::Parse {
                line,
                start,
                end,
                msg,
            } => {
                assert_eq!(*line, 1);
                assert!(msg.contains("UTF-8"), "{msg}");
                // The span covers the quoted string token, including the bad byte.
                assert!(
                    *start <= name_at + 2 && name_at + 2 < *end,
                    "{start}..{end}"
                );
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        assert!(matches!(
            scan_ndjson(&bytes),
            Err(CleoError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn out_of_order_days_are_rejected_at_the_day_token() {
        let sim = Simulator::new(SimulatorConfig::noiseless(7));
        let mut log = TelemetryLog::new();
        for (job, day) in [(1u64, 5u32), (2, 3)] {
            let plan = sample_plan(job, day, 0);
            let run = sim.run(&plan);
            log.push(JobTelemetry::new(plan, run));
        }
        let text = write_ndjson(&log);
        let err = read_ndjson(text.as_bytes()).expect_err("day regression must fail");
        match &err {
            CleoError::Parse {
                line,
                start,
                end,
                msg,
            } => {
                assert_eq!(*line, 2);
                assert!(msg.contains("out-of-order day 3"), "{msg}");
                let line2 = text.lines().nth(1).unwrap().as_bytes();
                assert_eq!(
                    &line2[*start..*end],
                    b"3",
                    "span must point at the day token"
                );
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        // Same contract from the scanner and the binary reader.
        assert!(matches!(
            scan_ndjson(text.as_bytes()),
            Err(CleoError::Parse { line: 2, .. })
        ));
        let bytes = write_binary(&log);
        match read_binary(&bytes).expect_err("binary day regression must fail") {
            CleoError::Parse {
                line, start, end, ..
            } => {
                assert_eq!(line, 2);
                assert_eq!((start, end), BINARY_DAY_SPAN);
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn binary_truncation_and_bad_utf8_are_rejected() {
        let log = sample_log();
        let bytes = write_binary(&log);
        // Truncate inside the final record.
        let err = binary_record_payloads(&bytes[..bytes.len() - 3]).expect_err("truncated");
        assert!(matches!(err, CleoError::Parse { line: 4, .. }), "{err:?}");
        // Record-level truncation: cut a payload short and re-frame it.
        let payloads = binary_record_payloads(&bytes).unwrap();
        let err = decode_binary_record(1, &payloads[0][..payloads[0].len() - 2])
            .expect_err("short payload");
        match err {
            CleoError::Parse { line: 1, msg, .. } => {
                assert!(
                    msg.contains("truncated") || msg.contains("trailing"),
                    "{msg}"
                )
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        // Corrupt the name's UTF-8 (name starts after id/cluster/day/template/recurring).
        let mut payload = payloads[1].to_vec();
        let name_at = 8 + 1 + 4 + 9 + 1 + 4;
        payload[name_at] = 0xFF;
        let err = decode_binary_record(2, &payload).expect_err("bad UTF-8");
        match err {
            CleoError::Parse { line: 2, msg, .. } => assert!(msg.contains("UTF-8"), "{msg}"),
            other => panic!("expected Parse, got {other:?}"),
        }
        // Bad magic.
        assert!(matches!(
            read_binary(b"NOPE"),
            Err(CleoError::Parse { line: 0, .. })
        ));
    }

    #[test]
    fn malformed_parent_indices_are_rejected() {
        let log = sample_log();
        let text = write_ndjson(&log);
        // Forward-referencing parent: point op 1 at itself.
        let broken = text.replacen("{\"parent\":0,", "{\"parent\":1,", 1);
        let err = read_ndjson(broken.as_bytes()).expect_err("self parent must fail");
        assert!(matches!(err, CleoError::Parse { line: 1, .. }), "{err:?}");
        // Second root.
        let broken = text.replacen("{\"parent\":0,", "{\"parent\":-1,", 1);
        let err = read_ndjson(broken.as_bytes()).expect_err("second root must fail");
        match err {
            CleoError::Parse { line: 1, msg, .. } => assert!(msg.contains("second root"), "{msg}"),
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn escaped_strings_round_trip() {
        let sim = Simulator::new(SimulatorConfig::noiseless(3));
        let mut plan = sample_plan(9, 1, 0);
        plan.meta.name = "weird \"name\"\twith\nnewlines \\ and unicode é".into();
        plan.root.visit_mut(&mut |n| {
            if n.kind == PhysicalOpKind::Process {
                n.label = "udf\u{1}ctrl".into();
            }
        });
        let run = sim.run(&plan);
        let log = TelemetryLog::from_jobs(vec![JobTelemetry::new(plan, run)]);
        let text = write_ndjson(&log);
        assert_eq!(read_ndjson(text.as_bytes()).expect("parses"), log);
        let bytes = write_binary(&log);
        assert_eq!(read_binary(&bytes).expect("parses"), log);
    }

    #[test]
    fn trace_events_round_trip_and_errors_are_span_exact() {
        let events = vec![
            TraceEvent::Admission {
                seq: 0,
                shard: 2,
                verdict: AdmissionKind::Admitted,
            },
            TraceEvent::Admission {
                seq: 1,
                shard: 2,
                verdict: AdmissionKind::Shed,
            },
            TraceEvent::Batch {
                seq: 0,
                shard: 2,
                jobs: 8,
            },
            TraceEvent::Route {
                seq: 5,
                cluster: 1,
                outcome: RouteKind::Donor,
                version: 3,
            },
            TraceEvent::Breaker {
                seq: 40,
                cluster: 1,
                state: BreakerKind::HalfOpen,
            },
            TraceEvent::Publish {
                seq: 2,
                cluster: NO_CLUSTER,
                lineage: PublishKind::Delta,
                version: 2,
            },
            TraceEvent::Publish {
                seq: 3,
                cluster: 0,
                lineage: PublishKind::Rollback,
                version: 1,
            },
            TraceEvent::Watchdog {
                seq: (2 << 8) | 1,
                cluster: 1,
                verdict: WatchdogKind::RolledBack,
                version: 2,
            },
            TraceEvent::Quarantine {
                seq: 7,
                record: 7,
                line: 4,
            },
        ];
        let text = write_events_ndjson(&events);
        // One line per event, canonical fields, null cluster for unsharded.
        assert_eq!(text.lines().count(), events.len());
        assert!(text.contains("\"kind\":\"publish\",\"cluster\":null,\"lineage\":\"delta\""));
        assert_eq!(read_events_ndjson(text.as_bytes()).expect("parses"), events);

        // Unknown tag: the error pinpoints the offending token's line + span.
        let broken = text.replacen("\"donor\"", "\"stolen\"", 1);
        match read_events_ndjson(broken.as_bytes()).expect_err("bad tag") {
            CleoError::Parse {
                line, start, end, ..
            } => {
                assert_eq!(line, 4);
                let bad = broken.lines().nth(3).unwrap().as_bytes();
                assert_eq!(&bad[start..end], b"\"stolen\"");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        // Trailing garbage is rejected, not silently dropped.
        let trailing = text.replacen("\"jobs\":8}", "\"jobs\":8} ", 1);
        assert!(matches!(
            read_events_ndjson(trailing.as_bytes()),
            Err(CleoError::Parse { line: 3, .. })
        ));
    }

    #[test]
    fn chunked_reads_report_absolute_line_numbers() {
        let log = sample_log();
        let text = write_ndjson(&log);
        // Split after the second line and parse the tail as a chunk starting
        // at line 3 — errors and successes must both be offset-correct.
        let split = text
            .char_indices()
            .filter(|&(_, c)| c == '\n')
            .map(|(i, _)| i + 1)
            .nth(1)
            .unwrap();
        let tail = read_ndjson_at(&text.as_bytes()[split..], 3).expect("tail parses");
        assert_eq!(tail.len(), 2);
        let mut corrupted = text.as_bytes()[split..].to_vec();
        corrupted[0] = b'X';
        match read_ndjson_at(&corrupted, 3).expect_err("corrupt tail") {
            CleoError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("expected Parse, got {other:?}"),
        }
    }
}
