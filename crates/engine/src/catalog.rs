//! Table catalog and column statistics.
//!
//! The catalog plays the role of SCOPE's metadata service: it records, per table, the
//! row count, average row width, and per-column distinct-value fractions that the
//! optimizer's cardinality estimator consumes.  Recurring-job inputs grow and shrink
//! between instances (Figure 2 shows a 1.7× input-size swing for one hourly job), so
//! tables can be rescaled per job instance via [`Catalog::with_scaled_table`].

use std::collections::BTreeMap;

use cleo_common::{CleoError, Result};

/// A column definition with the statistics used for estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Average width of the column value in bytes.
    pub avg_width: f64,
    /// Fraction of rows carrying a distinct value (1.0 = unique key, 0.01 = 1% NDV).
    pub distinct_fraction: f64,
}

impl ColumnDef {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, avg_width: f64, distinct_fraction: f64) -> Self {
        ColumnDef {
            name: name.into(),
            avg_width,
            distinct_fraction: distinct_fraction.clamp(1e-9, 1.0),
        }
    }
}

/// A table definition: columns plus table-level statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TableDef {
    /// Table name (e.g. `"lineitem"`, `"clickstream_2026_06_14"`).
    pub name: String,
    /// Column definitions.
    pub columns: Vec<ColumnDef>,
    /// Number of rows in this instance of the table.
    pub row_count: f64,
    /// Number of partitions (extents) the table is stored in; the Extract operator's
    /// default degree of parallelism follows from this.
    pub stored_partitions: usize,
}

impl TableDef {
    /// Create a table definition.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<ColumnDef>,
        row_count: f64,
        stored_partitions: usize,
    ) -> Self {
        TableDef {
            name: name.into(),
            columns,
            row_count: row_count.max(0.0),
            stored_partitions: stored_partitions.max(1),
        }
    }

    /// Average row width in bytes (sum of column widths).
    pub fn avg_row_bytes(&self) -> f64 {
        self.columns
            .iter()
            .map(|c| c.avg_width)
            .sum::<f64>()
            .max(1.0)
    }

    /// Total size of the table in bytes.
    pub fn total_bytes(&self) -> f64 {
        self.row_count * self.avg_row_bytes()
    }

    /// Distinct fraction of a column, or a default of 0.1 when the column is unknown
    /// (mirrors the magic constants real optimizers fall back to).
    pub fn column_distinct_fraction(&self, column: &str) -> f64 {
        self.columns
            .iter()
            .find(|c| c.name == column)
            .map(|c| c.distinct_fraction)
            .unwrap_or(0.1)
    }

    /// Return a copy of this table with the row count scaled by `factor`
    /// (used to model day-over-day input growth for recurring jobs).
    pub fn scaled(&self, factor: f64) -> TableDef {
        let mut t = self.clone();
        t.row_count = (self.row_count * factor).max(0.0);
        t
    }
}

/// The table catalog.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Catalog {
    tables: BTreeMap<String, TableDef>,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register (or replace) a table.
    pub fn add_table(&mut self, table: TableDef) {
        self.tables.insert(table.name.clone(), table);
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Result<&TableDef> {
        self.tables
            .get(name)
            .ok_or_else(|| CleoError::CatalogError(format!("unknown table '{name}'")))
    }

    /// True when a table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Iterate over table names in deterministic (sorted) order.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(|s| s.as_str())
    }

    /// Return a copy of the catalog with one table's row count scaled by `factor`.
    pub fn with_scaled_table(&self, name: &str, factor: f64) -> Result<Catalog> {
        let mut c = self.clone();
        let t = self.table(name)?.scaled(factor);
        c.add_table(t);
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clicks_table() -> TableDef {
        TableDef::new(
            "clickstream",
            vec![
                ColumnDef::new("user_id", 8.0, 0.2),
                ColumnDef::new("url", 60.0, 0.5),
                ColumnDef::new("ts", 8.0, 0.9),
            ],
            1e9,
            250,
        )
    }

    #[test]
    fn table_statistics_derive_correctly() {
        let t = clicks_table();
        assert_eq!(t.avg_row_bytes(), 76.0);
        assert_eq!(t.total_bytes(), 76.0e9);
        assert_eq!(t.column_distinct_fraction("user_id"), 0.2);
        assert_eq!(t.column_distinct_fraction("missing"), 0.1);
    }

    #[test]
    fn scaling_changes_only_row_count() {
        let t = clicks_table();
        let s = t.scaled(1.5);
        assert_eq!(s.row_count, 1.5e9);
        assert_eq!(s.avg_row_bytes(), t.avg_row_bytes());
        assert_eq!(s.stored_partitions, t.stored_partitions);
    }

    #[test]
    fn catalog_lookup_and_scaling() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.add_table(clicks_table());
        assert_eq!(c.len(), 1);
        assert!(c.has_table("clickstream"));
        assert!(c.table("nope").is_err());
        let scaled = c.with_scaled_table("clickstream", 2.0).unwrap();
        assert_eq!(scaled.table("clickstream").unwrap().row_count, 2e9);
        // original untouched
        assert_eq!(c.table("clickstream").unwrap().row_count, 1e9);
        assert!(c.with_scaled_table("nope", 2.0).is_err());
    }

    #[test]
    fn distinct_fraction_is_clamped() {
        let c = ColumnDef::new("x", 4.0, 7.5);
        assert_eq!(c.distinct_fraction, 1.0);
        let c = ColumnDef::new("x", 4.0, -1.0);
        assert!(c.distinct_fraction > 0.0);
    }

    #[test]
    fn degenerate_tables_are_safe() {
        let t = TableDef::new("empty", vec![], -5.0, 0);
        assert_eq!(t.row_count, 0.0);
        assert_eq!(t.stored_partitions, 1);
        assert_eq!(t.avg_row_bytes(), 1.0);
    }
}
