//! Logical query plans.
//!
//! A [`LogicalNode`] tree is what a job submits to the optimizer.  Each relational
//! operator carries *two* sets of data-dependent parameters: the **estimated**
//! selectivity/fanout the optimizer's cardinality estimator would derive (with the
//! usual independence assumptions and stale statistics), and the **actual** value that
//! the execution simulator uses.  This split is what lets the reproduction exercise the
//! paper's central observation — that even perfect cardinalities do not make the
//! default cost model accurate — and lets us run the "perfect cardinality feedback"
//! ablation of Figure 1 by simply substituting the actual values for the estimates.

use crate::catalog::Catalog;
use crate::types::OpStats;
use cleo_common::Result;

/// Supported join types (SCOPE's evaluation workloads are dominated by equi-joins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    /// Inner equi-join.
    Inner,
    /// Left outer equi-join.
    LeftOuter,
}

/// A logical relational operator.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalOp {
    /// Read a table registered in the catalog.
    Get {
        /// Catalog table name.
        table: String,
    },
    /// Row filter with estimated and actual selectivities.
    Filter {
        /// Human-readable predicate (kept for signatures/debugging only).
        predicate: String,
        /// Selectivity the optimizer estimates.
        est_selectivity: f64,
        /// Selectivity actually observed at runtime.
        actual_selectivity: f64,
    },
    /// Column projection retaining `width_fraction` of the input row width.
    Project {
        /// Fraction of the input row width retained (0, 1].
        width_fraction: f64,
    },
    /// Equi-join of two children.
    Join {
        /// Join algorithm-agnostic kind.
        kind: JoinKind,
        /// Join key column names (used for partitioning properties).
        keys: Vec<String>,
        /// Estimated fanout: output rows = max(left, right) × fanout.
        est_fanout: f64,
        /// Actual fanout observed at runtime.
        actual_fanout: f64,
    },
    /// Group-by aggregation.
    Aggregate {
        /// Grouping key columns.
        group_keys: Vec<String>,
        /// Estimated ratio of groups to input rows (0, 1].
        est_group_fraction: f64,
        /// Actual ratio of groups to input rows.
        actual_group_fraction: f64,
        /// Output row width as a fraction of the input width.
        width_fraction: f64,
    },
    /// Sort on the given keys.
    Sort {
        /// Sort key columns.
        keys: Vec<String>,
    },
    /// A user-defined processor/reducer — the "custom user code that ends up as a black
    /// box in the cost models" of Section 2.4.
    Process {
        /// UDF name (part of the operator signature).
        udf_name: String,
        /// Estimated output/input row ratio.
        est_selectivity: f64,
        /// Actual output/input row ratio.
        actual_selectivity: f64,
        /// Output width fraction.
        width_fraction: f64,
        /// Hidden per-row cost multiplier only the simulator knows about (the default
        /// cost model treats every UDF the same).
        hidden_cost_factor: f64,
    },
    /// Bag union of the children.
    Union,
    /// Terminal sink writing the result.
    Output {
        /// Sink name.
        sink: String,
    },
}

impl LogicalOp {
    /// Short operator name used in signatures and debug output.
    pub fn name(&self) -> &'static str {
        match self {
            LogicalOp::Get { .. } => "Get",
            LogicalOp::Filter { .. } => "Filter",
            LogicalOp::Project { .. } => "Project",
            LogicalOp::Join { .. } => "Join",
            LogicalOp::Aggregate { .. } => "Aggregate",
            LogicalOp::Sort { .. } => "Sort",
            LogicalOp::Process { .. } => "Process",
            LogicalOp::Union => "Union",
            LogicalOp::Output { .. } => "Output",
        }
    }
}

/// A node of the logical plan tree.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalNode {
    /// The operator at this node.
    pub op: LogicalOp,
    /// Child subtrees (inputs).
    pub children: Vec<LogicalNode>,
}

/// Cardinality/width information derived for one logical node.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DerivedCards {
    /// Estimated statistics (what the optimizer sees).
    pub estimated: OpStats,
    /// Actual statistics (what execution would observe).
    pub actual: OpStats,
}

impl LogicalNode {
    /// Create a leaf node.
    pub fn leaf(op: LogicalOp) -> Self {
        LogicalNode {
            op,
            children: Vec::new(),
        }
    }

    /// Create an internal node.
    pub fn internal(op: LogicalOp, children: Vec<LogicalNode>) -> Self {
        LogicalNode { op, children }
    }

    /// Convenience: scan a table.
    pub fn get(table: impl Into<String>) -> Self {
        LogicalNode::leaf(LogicalOp::Get {
            table: table.into(),
        })
    }

    /// Convenience: filter on top of `self`.
    pub fn filter(self, predicate: impl Into<String>, est: f64, actual: f64) -> Self {
        LogicalNode::internal(
            LogicalOp::Filter {
                predicate: predicate.into(),
                est_selectivity: est.clamp(1e-9, 1.0),
                actual_selectivity: actual.clamp(1e-9, 1.0),
            },
            vec![self],
        )
    }

    /// Convenience: project on top of `self`.
    pub fn project(self, width_fraction: f64) -> Self {
        LogicalNode::internal(
            LogicalOp::Project {
                width_fraction: width_fraction.clamp(0.01, 1.0),
            },
            vec![self],
        )
    }

    /// Convenience: join `self` with `right`.
    pub fn join(
        self,
        right: LogicalNode,
        keys: Vec<String>,
        est_fanout: f64,
        actual_fanout: f64,
    ) -> Self {
        LogicalNode::internal(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                keys,
                est_fanout: est_fanout.max(1e-9),
                actual_fanout: actual_fanout.max(1e-9),
            },
            vec![self, right],
        )
    }

    /// Convenience: aggregate on top of `self`.
    pub fn aggregate(self, group_keys: Vec<String>, est_frac: f64, actual_frac: f64) -> Self {
        LogicalNode::internal(
            LogicalOp::Aggregate {
                group_keys,
                est_group_fraction: est_frac.clamp(1e-9, 1.0),
                actual_group_fraction: actual_frac.clamp(1e-9, 1.0),
                width_fraction: 0.6,
            },
            vec![self],
        )
    }

    /// Convenience: sort on top of `self`.
    pub fn sort(self, keys: Vec<String>) -> Self {
        LogicalNode::internal(LogicalOp::Sort { keys }, vec![self])
    }

    /// Convenience: user-defined processor on top of `self`.
    pub fn process(
        self,
        udf_name: impl Into<String>,
        est_selectivity: f64,
        actual_selectivity: f64,
        hidden_cost_factor: f64,
    ) -> Self {
        LogicalNode::internal(
            LogicalOp::Process {
                udf_name: udf_name.into(),
                est_selectivity: est_selectivity.max(1e-9),
                actual_selectivity: actual_selectivity.max(1e-9),
                width_fraction: 0.8,
                hidden_cost_factor: hidden_cost_factor.max(0.01),
            },
            vec![self],
        )
    }

    /// Convenience: terminal output on top of `self`.
    pub fn output(self, sink: impl Into<String>) -> Self {
        LogicalNode::internal(LogicalOp::Output { sink: sink.into() }, vec![self])
    }

    /// Number of nodes in the subtree rooted here.
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(|c| c.node_count()).sum::<usize>()
    }

    /// Depth of the subtree (a single node has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(|c| c.depth()).max().unwrap_or(0)
    }

    /// Count of each logical operator name in the subtree, sorted by name — the
    /// "frequency of each logical operator" used by the operator-subgraphApprox model.
    pub fn operator_frequency(&self) -> Vec<(String, usize)> {
        use std::collections::BTreeMap;
        fn walk(node: &LogicalNode, acc: &mut BTreeMap<String, usize>) {
            *acc.entry(node.op.name().to_string()).or_insert(0) += 1;
            for c in &node.children {
                walk(c, acc);
            }
        }
        let mut acc = BTreeMap::new();
        walk(self, &mut acc);
        acc.into_iter().collect()
    }

    /// Names of all tables read in the subtree, in depth-first order.
    pub fn input_tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        fn walk(node: &LogicalNode, out: &mut Vec<String>) {
            if let LogicalOp::Get { table } = &node.op {
                out.push(table.clone());
            }
            for c in &node.children {
                walk(c, out);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Derive estimated and actual cardinalities/widths for this node (recursively
    /// deriving the children first).  `catalog` provides leaf statistics.
    pub fn derive_cards(&self, catalog: &Catalog) -> Result<DerivedCards> {
        let child_cards: Vec<DerivedCards> = self
            .children
            .iter()
            .map(|c| c.derive_cards(catalog))
            .collect::<Result<Vec<_>>>()?;

        let sum_child =
            |f: &dyn Fn(&DerivedCards) -> f64| -> f64 { child_cards.iter().map(f).sum() };

        let (estimated, actual) = match &self.op {
            LogicalOp::Get { table } => {
                let t = catalog.table(table)?;
                let stats = OpStats {
                    input_cardinality: t.row_count,
                    base_cardinality: t.row_count,
                    output_cardinality: t.row_count,
                    avg_row_bytes: t.avg_row_bytes(),
                };
                // Leaf-level statistics are assumed accurate: estimation error in the
                // paper (and here) comes from predicates, joins, and UDFs above.
                (stats, stats)
            }
            LogicalOp::Filter {
                est_selectivity,
                actual_selectivity,
                ..
            } => {
                let c = &child_cards[0];
                (
                    unary_stats(c.estimated, *est_selectivity, 1.0),
                    unary_stats(c.actual, *actual_selectivity, 1.0),
                )
            }
            LogicalOp::Project { width_fraction } => {
                let c = &child_cards[0];
                (
                    unary_stats(c.estimated, 1.0, *width_fraction),
                    unary_stats(c.actual, 1.0, *width_fraction),
                )
            }
            LogicalOp::Join {
                est_fanout,
                actual_fanout,
                ..
            } => {
                let l = &child_cards[0];
                let r = &child_cards[1];
                (
                    join_stats(l.estimated, r.estimated, *est_fanout),
                    join_stats(l.actual, r.actual, *actual_fanout),
                )
            }
            LogicalOp::Aggregate {
                est_group_fraction,
                actual_group_fraction,
                width_fraction,
                ..
            } => {
                let c = &child_cards[0];
                (
                    unary_stats(c.estimated, *est_group_fraction, *width_fraction),
                    unary_stats(c.actual, *actual_group_fraction, *width_fraction),
                )
            }
            LogicalOp::Sort { .. } => {
                let c = &child_cards[0];
                (
                    unary_stats(c.estimated, 1.0, 1.0),
                    unary_stats(c.actual, 1.0, 1.0),
                )
            }
            LogicalOp::Process {
                est_selectivity,
                actual_selectivity,
                width_fraction,
                ..
            } => {
                let c = &child_cards[0];
                (
                    unary_stats(c.estimated, *est_selectivity, *width_fraction),
                    unary_stats(c.actual, *actual_selectivity, *width_fraction),
                )
            }
            LogicalOp::Union => {
                let est = OpStats {
                    input_cardinality: sum_child(&|c| c.estimated.output_cardinality),
                    base_cardinality: sum_child(&|c| c.estimated.base_cardinality),
                    output_cardinality: sum_child(&|c| c.estimated.output_cardinality),
                    avg_row_bytes: child_cards
                        .iter()
                        .map(|c| c.estimated.avg_row_bytes)
                        .fold(0.0, f64::max),
                };
                let act = OpStats {
                    input_cardinality: sum_child(&|c| c.actual.output_cardinality),
                    base_cardinality: sum_child(&|c| c.actual.base_cardinality),
                    output_cardinality: sum_child(&|c| c.actual.output_cardinality),
                    avg_row_bytes: child_cards
                        .iter()
                        .map(|c| c.actual.avg_row_bytes)
                        .fold(0.0, f64::max),
                };
                (est, act)
            }
            LogicalOp::Output { .. } => {
                let c = &child_cards[0];
                (
                    unary_stats(c.estimated, 1.0, 1.0),
                    unary_stats(c.actual, 1.0, 1.0),
                )
            }
        };
        Ok(DerivedCards { estimated, actual })
    }
}

/// Stats for a unary operator: output = selectivity × child output, width scaled.
fn unary_stats(child: OpStats, selectivity: f64, width_fraction: f64) -> OpStats {
    OpStats {
        input_cardinality: child.output_cardinality,
        base_cardinality: child.base_cardinality,
        output_cardinality: (child.output_cardinality * selectivity).max(1.0),
        avg_row_bytes: (child.avg_row_bytes * width_fraction).max(1.0),
    }
}

/// Stats for a binary join: output = max(left, right) × fanout, widths add.
fn join_stats(left: OpStats, right: OpStats, fanout: f64) -> OpStats {
    OpStats {
        input_cardinality: left.output_cardinality + right.output_cardinality,
        base_cardinality: left.base_cardinality + right.base_cardinality,
        output_cardinality: (left.output_cardinality.max(right.output_cardinality) * fanout)
            .max(1.0),
        avg_row_bytes: (left.avg_row_bytes + right.avg_row_bytes).max(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ColumnDef, TableDef};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(TableDef::new(
            "events",
            vec![
                ColumnDef::new("user", 8.0, 0.1),
                ColumnDef::new("url", 56.0, 0.4),
            ],
            1_000_000.0,
            64,
        ));
        c.add_table(TableDef::new(
            "users",
            vec![
                ColumnDef::new("user", 8.0, 1.0),
                ColumnDef::new("geo", 8.0, 0.01),
            ],
            10_000.0,
            8,
        ));
        c
    }

    fn sample_plan() -> LogicalNode {
        LogicalNode::get("events")
            .filter("url LIKE '%search%'", 0.2, 0.05)
            .join(LogicalNode::get("users"), vec!["user".into()], 1.0, 1.0)
            .aggregate(vec!["geo".into()], 0.01, 0.002)
            .output("facts")
    }

    #[test]
    fn structural_helpers() {
        let p = sample_plan();
        assert_eq!(p.node_count(), 6);
        assert_eq!(p.depth(), 5);
        assert_eq!(
            p.input_tables(),
            vec!["events".to_string(), "users".to_string()]
        );
        let freq = p.operator_frequency();
        assert!(freq.contains(&("Get".to_string(), 2)));
        assert!(freq.contains(&("Filter".to_string(), 1)));
    }

    #[test]
    fn estimated_and_actual_cards_diverge_with_depth() {
        let p = sample_plan();
        let cat = catalog();
        let cards = p.derive_cards(&cat).unwrap();
        // Filter: est 200k vs actual 50k; join keeps max(left,right)*1.0; aggregate
        // shrinks by different fractions. So the final estimate should be well above
        // the actual — compounding estimation error.
        assert!(cards.estimated.output_cardinality > cards.actual.output_cardinality * 5.0);
        // Base cardinality equals the sum of leaf rows in both worlds.
        assert_eq!(cards.estimated.base_cardinality, 1_010_000.0);
        assert_eq!(cards.actual.base_cardinality, 1_010_000.0);
    }

    #[test]
    fn leaf_cards_match_catalog() {
        let cat = catalog();
        let leaf = LogicalNode::get("events");
        let cards = leaf.derive_cards(&cat).unwrap();
        assert_eq!(cards.estimated.output_cardinality, 1_000_000.0);
        assert_eq!(cards.estimated.avg_row_bytes, 64.0);
        assert_eq!(cards.estimated, cards.actual);
    }

    #[test]
    fn unknown_table_is_an_error() {
        let cat = catalog();
        let p = LogicalNode::get("missing").output("x");
        assert!(p.derive_cards(&cat).is_err());
    }

    #[test]
    fn join_output_uses_max_child_times_fanout() {
        let cat = catalog();
        let p = LogicalNode::get("events").join(
            LogicalNode::get("users"),
            vec!["user".into()],
            2.0,
            0.5,
        );
        let cards = p.derive_cards(&cat).unwrap();
        assert_eq!(cards.estimated.output_cardinality, 2_000_000.0);
        assert_eq!(cards.actual.output_cardinality, 500_000.0);
        assert_eq!(cards.estimated.avg_row_bytes, 64.0 + 16.0);
        assert_eq!(cards.estimated.input_cardinality, 1_010_000.0);
    }

    #[test]
    fn union_sums_children() {
        let cat = catalog();
        let p = LogicalNode::internal(
            LogicalOp::Union,
            vec![LogicalNode::get("users"), LogicalNode::get("users")],
        );
        let cards = p.derive_cards(&cat).unwrap();
        assert_eq!(cards.estimated.output_cardinality, 20_000.0);
        assert_eq!(cards.actual.base_cardinality, 20_000.0);
    }

    #[test]
    fn output_cardinality_never_below_one() {
        let cat = catalog();
        let p = LogicalNode::get("users").filter("impossible", 1e-12, 1e-12);
        let cards = p.derive_cards(&cat).unwrap();
        assert!(cards.estimated.output_cardinality >= 1.0);
        assert!(cards.actual.output_cardinality >= 1.0);
    }

    #[test]
    fn process_udf_keeps_hidden_factor_out_of_estimates() {
        let cat = catalog();
        let p = LogicalNode::get("events").process("ExtractFacts", 0.5, 0.3, 25.0);
        let cards = p.derive_cards(&cat).unwrap();
        // Hidden cost factor affects runtime, not cardinalities.
        assert_eq!(cards.estimated.output_cardinality, 500_000.0);
        assert_eq!(cards.actual.output_cardinality, 300_000.0);
    }
}
