//! SCOPE-like big data query processing substrate.
//!
//! The paper's system, Cleo, is built *inside* Microsoft's SCOPE: it learns from
//! SCOPE's telemetry and plugs into SCOPE's Cascades optimizer.  Neither is available,
//! so this crate provides the substrate the reproduction needs:
//!
//! * [`catalog`] — tables and column statistics,
//! * [`logical`] — logical plans with separate *estimated* and *actual*
//!   selectivities (the source of realistic cardinality-estimation error),
//! * [`physical`] — physical plans with SCOPE's operator set (Extract, Exchange,
//!   hash/merge joins, hash/stream aggregates, UDF processors, ...),
//! * [`stage`] — stage formation: operators sharing a partition count,
//! * [`exec`] — the execution simulator whose ground-truth runtime model generates
//!   the telemetry Cleo learns from,
//! * [`telemetry`] — executed-job records (plan + per-operator exclusive latencies),
//! * [`telemetry_io`] — the telemetry firehose wire formats (NDJSON + compact
//!   binary) with span-exact parse errors and an allocation-free validation scan,
//! * [`wire`] — the shared length-prefixed binary framing (`CLT1` style) the
//!   telemetry and model-snapshot codecs both build on,
//! * [`workload`] — synthetic production-like recurring/ad-hoc workloads and TPC-H.

pub mod catalog;
pub mod exec;
pub mod logical;
pub mod physical;
pub mod stage;
pub mod telemetry;
pub mod telemetry_io;
pub mod types;
pub mod wire;
pub mod workload;

pub use catalog::{Catalog, ColumnDef, TableDef};
pub use exec::{JobRun, OperatorRun, Simulator, SimulatorConfig};
pub use logical::{JoinKind, LogicalNode, LogicalOp};
pub use physical::{JobMeta, PhysicalNode, PhysicalOpKind, PhysicalPlan};
pub use stage::{build_stage_graph, Stage, StageGraph};
pub use telemetry::{JobTelemetry, ModelProvenance, TelemetryLog};
pub use types::{ClusterId, DayIndex, JobId, OpId, OpStats, Seconds, TemplateId};
pub use workload::JobSpec;
