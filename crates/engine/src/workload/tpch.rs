//! TPC-H workload.
//!
//! Section 6.6.2 evaluates Cleo on TPC-H at scale factor 1000 (1 TB), running all 22
//! queries ten times with randomly chosen parameters to build the training set and
//! then re-optimizing with the learned models.  This module provides:
//!
//! * [`tpch_catalog`] — the eight-table TPC-H schema with row counts and column
//!   statistics scaled by the scale factor,
//! * [`tpch_query`] — logical plans for queries Q1–Q22 (structural reproductions of
//!   the reference queries: the joins, aggregations, and selective filters that drive
//!   plan choice, with estimated vs. actual selectivities reflecting the usual
//!   correlation-blind estimator errors),
//! * [`tpch_job`] — a [`JobSpec`] wrapper with per-run parameter variation.

use cleo_common::rng::DetRng;

use crate::catalog::{Catalog, ColumnDef, TableDef};
use crate::logical::LogicalNode;
use crate::physical::JobMeta;
use crate::types::{ClusterId, DayIndex, JobId, TemplateId};
use crate::workload::JobSpec;

/// Build the TPC-H catalog for a given scale factor (SF 1 ≈ 6M lineitem rows).
pub fn tpch_catalog(scale_factor: f64) -> Catalog {
    let sf = scale_factor.max(0.01);
    let mut c = Catalog::new();
    c.add_table(TableDef::new(
        "lineitem",
        vec![
            ColumnDef::new("l_orderkey", 8.0, 0.25),
            ColumnDef::new("l_partkey", 8.0, 0.03),
            ColumnDef::new("l_suppkey", 8.0, 0.002),
            ColumnDef::new("l_quantity", 8.0, 0.00001),
            ColumnDef::new("l_extendedprice", 8.0, 0.15),
            ColumnDef::new("l_discount", 8.0, 0.000002),
            ColumnDef::new("l_shipdate", 8.0, 0.0004),
            ColumnDef::new("l_comment", 27.0, 0.6),
        ],
        6_000_000.0 * sf,
        ((sf * 200.0) as usize).clamp(8, 2000),
    ));
    c.add_table(TableDef::new(
        "orders",
        vec![
            ColumnDef::new("o_orderkey", 8.0, 1.0),
            ColumnDef::new("o_custkey", 8.0, 0.066),
            ColumnDef::new("o_orderdate", 8.0, 0.0016),
            ColumnDef::new("o_orderpriority", 12.0, 0.0000033),
            ColumnDef::new("o_comment", 48.0, 0.7),
        ],
        1_500_000.0 * sf,
        ((sf * 60.0) as usize).clamp(4, 800),
    ));
    c.add_table(TableDef::new(
        "customer",
        vec![
            ColumnDef::new("c_custkey", 8.0, 1.0),
            ColumnDef::new("c_nationkey", 8.0, 0.00017),
            ColumnDef::new("c_mktsegment", 10.0, 0.000033),
            ColumnDef::new("c_acctbal", 8.0, 0.9),
            ColumnDef::new("c_comment", 72.0, 0.9),
        ],
        150_000.0 * sf,
        ((sf * 8.0) as usize).clamp(2, 200),
    ));
    c.add_table(TableDef::new(
        "part",
        vec![
            ColumnDef::new("p_partkey", 8.0, 1.0),
            ColumnDef::new("p_brand", 10.0, 0.000125),
            ColumnDef::new("p_type", 25.0, 0.00075),
            ColumnDef::new("p_size", 4.0, 0.00025),
            ColumnDef::new("p_container", 10.0, 0.0002),
        ],
        200_000.0 * sf,
        ((sf * 8.0) as usize).clamp(2, 200),
    ));
    c.add_table(TableDef::new(
        "supplier",
        vec![
            ColumnDef::new("s_suppkey", 8.0, 1.0),
            ColumnDef::new("s_nationkey", 8.0, 0.0025),
            ColumnDef::new("s_acctbal", 8.0, 0.9),
            ColumnDef::new("s_comment", 62.0, 0.95),
        ],
        10_000.0 * sf,
        ((sf * 2.0) as usize).clamp(1, 64),
    ));
    c.add_table(TableDef::new(
        "partsupp",
        vec![
            ColumnDef::new("ps_partkey", 8.0, 0.25),
            ColumnDef::new("ps_suppkey", 8.0, 0.0125),
            ColumnDef::new("ps_supplycost", 8.0, 0.6),
            ColumnDef::new("ps_availqty", 4.0, 0.0125),
        ],
        800_000.0 * sf,
        ((sf * 32.0) as usize).clamp(2, 400),
    ));
    c.add_table(TableDef::new(
        "nation",
        vec![
            ColumnDef::new("n_nationkey", 8.0, 1.0),
            ColumnDef::new("n_regionkey", 8.0, 0.2),
            ColumnDef::new("n_name", 16.0, 1.0),
        ],
        25.0,
        1,
    ));
    c.add_table(TableDef::new(
        "region",
        vec![
            ColumnDef::new("r_regionkey", 8.0, 1.0),
            ColumnDef::new("r_name", 16.0, 1.0),
        ],
        5.0,
        1,
    ));
    c
}

/// Parameters that vary per query execution (date ranges, segments, brands, ...).
/// Values are kept abstract: each drives a selectivity around the TPC-H reference
/// value, jittered by the run's random parameter draw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpchParams {
    /// Selectivity scaling in `[0.5, 1.5]` applied to the query's parameterised filters.
    pub selectivity_scale: f64,
    /// Estimation-error factor: how far the optimizer's estimate is from the actual
    /// selectivity for correlated predicates.
    pub estimation_error: f64,
}

impl TpchParams {
    /// Reference parameters (scale 1.0, mild estimation error).
    pub fn reference() -> Self {
        TpchParams {
            selectivity_scale: 1.0,
            estimation_error: 1.4,
        }
    }

    /// Draw a random parameter variation for one run.
    pub fn draw(rng: &mut DetRng) -> Self {
        TpchParams {
            selectivity_scale: rng.uniform(0.5, 1.5),
            estimation_error: rng.lognormal_noise(0.5).clamp(0.3, 4.0),
        }
    }
}

/// Filter helper: estimated selectivity `est`, actual = est × scale / error.
fn flt(node: LogicalNode, pred: &str, est: f64, p: &TpchParams) -> LogicalNode {
    let actual = (est * p.selectivity_scale / p.estimation_error).clamp(1e-7, 1.0);
    node.filter(pred, est, actual)
}

/// Join helper with a mild fanout estimation error.
fn jn(
    left: LogicalNode,
    right: LogicalNode,
    key: &str,
    est_fanout: f64,
    p: &TpchParams,
) -> LogicalNode {
    let actual = (est_fanout / p.estimation_error.sqrt()).max(1e-7);
    left.join(right, vec![key.to_string()], est_fanout, actual)
}

/// Build the logical plan for TPC-H query `q` (1–22) with the given parameters.
///
/// The plans are structural reproductions: they contain the scans, selective filters,
/// join graph, aggregations, and ordering of the reference queries, which is what the
/// optimizer's plan choices (join algorithm, partitioning, exchange placement) react
/// to.  Sub-queries are flattened into joins/aggregations the way SCOPE's normaliser
/// would.
pub fn tpch_query(q: usize, p: &TpchParams) -> LogicalNode {
    let li = || LogicalNode::get("lineitem");
    let ord = || LogicalNode::get("orders");
    let cust = || LogicalNode::get("customer");
    let part = || LogicalNode::get("part");
    let supp = || LogicalNode::get("supplier");
    let ps = || LogicalNode::get("partsupp");
    let nat = || LogicalNode::get("nation");
    let reg = || LogicalNode::get("region");

    match q {
        1 => flt(li(), "l_shipdate <= date - 90", 0.98, p)
            .aggregate(
                vec!["l_returnflag".into(), "l_linestatus".into()],
                1e-6,
                8e-7,
            )
            .sort(vec!["l_returnflag".into()])
            .output("q1"),
        2 => {
            let parts = flt(part(), "p_size = ? and p_type like ?", 0.004, p);
            let sups = jn(
                jn(supp(), nat(), "nationkey", 1.0, p),
                reg(),
                "regionkey",
                0.2,
                p,
            );
            let joined = jn(
                jn(ps(), parts, "partkey", 0.004, p),
                sups,
                "suppkey",
                0.2,
                p,
            );
            joined
                .aggregate(vec!["ps_partkey".into()], 0.3, 0.25)
                .sort(vec!["s_acctbal".into()])
                .output("q2")
        }
        3 => {
            let c = flt(cust(), "c_mktsegment = ?", 0.2, p);
            let o = flt(ord(), "o_orderdate < ?", 0.48, p);
            let co = jn(o, c, "custkey", 0.2, p);
            let l = flt(li(), "l_shipdate > ?", 0.54, p);
            jn(l, co, "orderkey", 0.3, p)
                .aggregate(vec!["l_orderkey".into()], 0.3, 0.25)
                .sort(vec!["revenue".into()])
                .output("q3")
        }
        4 => {
            let o = flt(ord(), "o_orderdate in quarter", 0.038, p);
            let l = flt(li(), "l_commitdate < l_receiptdate", 0.63, p);
            jn(
                o,
                l.aggregate(vec!["l_orderkey".into()], 0.27, 0.25),
                "orderkey",
                0.05,
                p,
            )
            .aggregate(vec!["o_orderpriority".into()], 1e-6, 8e-7)
            .sort(vec!["o_orderpriority".into()])
            .output("q4")
        }
        5 => {
            let r = flt(reg(), "r_name = ?", 0.2, p);
            let n = jn(nat(), r, "regionkey", 0.2, p);
            let s = jn(supp(), n, "nationkey", 1.0, p);
            let c = jn(cust(), s.clone().project(0.3), "nationkey", 0.04, p);
            let o = flt(ord(), "o_orderdate in year", 0.15, p);
            let co = jn(o, c, "custkey", 0.2, p);
            jn(jn(li(), co, "orderkey", 0.15, p), s, "suppkey", 0.2, p)
                .aggregate(vec!["n_name".into()], 1e-5, 8e-6)
                .sort(vec!["revenue".into()])
                .output("q5")
        }
        6 => flt(
            li(),
            "l_shipdate in year and l_discount between ? and l_quantity < ?",
            0.019,
            p,
        )
        .aggregate(vec![], 1e-7, 1e-7)
        .output("q6"),
        7 => {
            let n1 = flt(nat(), "n_name in (?, ?)", 0.08, p);
            let s = jn(supp(), n1.clone(), "nationkey", 0.08, p);
            let c = jn(cust(), n1, "nationkey", 0.08, p);
            let o = jn(ord(), c, "custkey", 0.08, p);
            let l = flt(li(), "l_shipdate between years", 0.3, p);
            jn(jn(l, s, "suppkey", 0.08, p), o, "orderkey", 0.1, p)
                .aggregate(vec!["supp_nation".into(), "l_year".into()], 1e-5, 8e-6)
                .sort(vec!["supp_nation".into()])
                .output("q7")
        }
        8 => {
            let p_f = flt(part(), "p_type = ?", 0.0075, p);
            let l_p = jn(li(), p_f, "partkey", 0.0075, p);
            let s_l = jn(l_p, supp(), "suppkey", 1.0, p);
            let o = flt(ord(), "o_orderdate between 1995 and 1996", 0.3, p);
            let c_o = jn(
                o,
                jn(
                    cust(),
                    jn(nat(), reg(), "regionkey", 0.2, p),
                    "nationkey",
                    0.2,
                    p,
                ),
                "custkey",
                0.2,
                p,
            );
            jn(s_l, c_o, "orderkey", 0.3, p)
                .aggregate(vec!["o_year".into()], 1e-6, 8e-7)
                .sort(vec!["o_year".into()])
                .output("q8")
        }
        9 => {
            let p_f = flt(part(), "p_name like ?", 0.054, p);
            let l_s = jn(li(), supp(), "suppkey", 1.0, p);
            let l_p = jn(p_f, l_s, "partkey", 0.054, p);
            let with_ps = jn(l_p, ps(), "partkey", 1.0, p);
            let with_o = jn(with_ps, ord(), "orderkey", 1.0, p);
            jn(with_o, nat(), "nationkey", 1.0, p)
                .aggregate(vec!["nation".into(), "o_year".into()], 1e-4, 8e-5)
                .sort(vec!["nation".into()])
                .output("q9")
        }
        10 => {
            let o = flt(ord(), "o_orderdate in quarter", 0.038, p);
            let l = flt(li(), "l_returnflag = 'R'", 0.25, p);
            let lo = jn(l, o, "orderkey", 0.1, p);
            jn(
                jn(lo, cust(), "custkey", 1.0, p),
                nat(),
                "nationkey",
                1.0,
                p,
            )
            .aggregate(vec!["c_custkey".into()], 0.3, 0.25)
            .sort(vec!["revenue".into()])
            .output("q10")
        }
        11 => {
            let n = flt(nat(), "n_name = ?", 0.04, p);
            let s = jn(supp(), n, "nationkey", 0.04, p);
            jn(ps(), s, "suppkey", 0.04, p)
                .aggregate(vec!["ps_partkey".into()], 0.9, 0.8)
                .sort(vec!["value".into()])
                .output("q11")
        }
        12 => {
            let l = flt(li(), "l_shipmode in (?, ?) and receipt in year", 0.011, p);
            jn(ord(), l, "orderkey", 0.02, p)
                .aggregate(vec!["l_shipmode".into()], 1e-6, 8e-7)
                .sort(vec!["l_shipmode".into()])
                .output("q12")
        }
        13 => {
            let o = flt(ord(), "o_comment not like ?", 0.98, p);
            jn(
                cust(),
                o.aggregate(vec!["o_custkey".into()], 0.066, 0.06),
                "custkey",
                1.0,
                p,
            )
            .aggregate(vec!["c_count".into()], 1e-4, 8e-5)
            .sort(vec!["custdist".into()])
            .output("q13")
        }
        14 => {
            let l = flt(li(), "l_shipdate in month", 0.013, p);
            jn(l, part(), "partkey", 1.0, p)
                .aggregate(vec![], 1e-7, 1e-7)
                .output("q14")
        }
        15 => {
            let l = flt(li(), "l_shipdate in quarter", 0.038, p);
            let revenue = l.aggregate(vec!["l_suppkey".into()], 0.002, 0.0017);
            jn(supp(), revenue, "suppkey", 1.0, p)
                .sort(vec!["total_revenue".into()])
                .output("q15")
        }
        16 => {
            let pt = flt(
                part(),
                "p_brand <> ? and p_type not like ? and p_size in",
                0.04,
                p,
            );
            let s_bad = flt(supp(), "s_comment like '%Complaints%'", 0.0005, p);
            let ps_ok = jn(ps(), pt, "partkey", 0.04, p);
            jn(ps_ok, s_bad, "suppkey", 0.9, p)
                .aggregate(
                    vec!["p_brand".into(), "p_type".into(), "p_size".into()],
                    0.05,
                    0.04,
                )
                .sort(vec!["supplier_cnt".into()])
                .output("q16")
        }
        17 => {
            let pt = flt(part(), "p_brand = ? and p_container = ?", 0.001, p);
            let avg_qty = jn(li(), pt.clone(), "partkey", 0.001, p).aggregate(
                vec!["l_partkey".into()],
                0.9,
                0.85,
            );
            jn(
                jn(li(), pt, "partkey", 0.001, p),
                avg_qty,
                "partkey",
                0.3,
                p,
            )
            .aggregate(vec![], 1e-7, 1e-7)
            .output("q17")
        }
        18 => {
            let big = li()
                .aggregate(vec!["l_orderkey".into()], 0.25, 0.22)
                .filter(
                    "sum(qty) > ?",
                    0.005,
                    (0.005 * p.selectivity_scale / p.estimation_error).clamp(1e-7, 1.0),
                );
            let o_big = jn(ord(), big, "orderkey", 0.005, p);
            jn(
                jn(cust(), o_big, "custkey", 0.005, p),
                li(),
                "orderkey",
                4.0,
                p,
            )
            .aggregate(vec!["o_orderkey".into()], 0.2, 0.18)
            .sort(vec!["o_totalprice".into()])
            .output("q18")
        }
        19 => {
            let pt = flt(part(), "brand/container/size disjunction", 0.002, p);
            let l = flt(li(), "l_shipmode in (AIR, AIR REG)", 0.14, p);
            jn(l, pt, "partkey", 0.002, p)
                .aggregate(vec![], 1e-7, 1e-7)
                .output("q19")
        }
        20 => {
            let pt = flt(part(), "p_name like ?", 0.011, p);
            let l_agg = flt(li(), "l_shipdate in year", 0.15, p).aggregate(
                vec!["l_partkey".into(), "l_suppkey".into()],
                0.3,
                0.27,
            );
            let ps_f = jn(jn(ps(), pt, "partkey", 0.011, p), l_agg, "partkey", 0.5, p);
            let n = flt(nat(), "n_name = ?", 0.04, p);
            jn(
                jn(supp(), n, "nationkey", 0.04, p),
                ps_f.aggregate(vec!["ps_suppkey".into()], 0.4, 0.35),
                "suppkey",
                0.5,
                p,
            )
            .sort(vec!["s_name".into()])
            .output("q20")
        }
        21 => {
            let n = flt(nat(), "n_name = ?", 0.04, p);
            let s = jn(supp(), n, "nationkey", 0.04, p);
            let l1 = flt(li(), "l_receiptdate > l_commitdate", 0.5, p);
            let o = flt(ord(), "o_orderstatus = 'F'", 0.49, p);
            let sl = jn(l1, s, "suppkey", 0.04, p);
            jn(
                jn(sl, o, "orderkey", 0.5, p),
                li().aggregate(vec!["l_orderkey".into()], 0.25, 0.22),
                "orderkey",
                0.8,
                p,
            )
            .aggregate(vec!["s_name".into()], 1e-4, 8e-5)
            .sort(vec!["numwait".into()])
            .output("q21")
        }
        _ => {
            // Q22 (and the fallback): customers with above-average balances and no orders.
            let c = flt(
                cust(),
                "substring(c_phone) in (...) and c_acctbal > avg",
                0.13,
                p,
            );
            let o_agg = ord().aggregate(vec!["o_custkey".into()], 0.066, 0.06);
            jn(c, o_agg, "custkey", 0.35, p)
                .aggregate(vec!["cntrycode".into()], 1e-5, 8e-6)
                .sort(vec!["cntrycode".into()])
                .output("q22")
        }
    }
}

/// Wrap a TPC-H query into a [`JobSpec`] runnable through the optimizer/simulator.
pub fn tpch_job(
    q: usize,
    run: usize,
    scale_factor: f64,
    params: &TpchParams,
    cluster: ClusterId,
) -> JobSpec {
    let plan = tpch_query(q, params);
    let catalog = tpch_catalog(scale_factor);
    let inputs = plan.input_tables();
    let meta = JobMeta {
        id: JobId(900_000 + (q as u64) * 1000 + run as u64),
        cluster,
        template: Some(TemplateId(900_000 + q as u64)),
        name: format!("tpch_q{q:02}_run{run}"),
        normalized_inputs: inputs,
        params: vec![params.selectivity_scale, params.estimation_error],
        day: DayIndex(run as u32),
        recurring: true,
    };
    JobSpec {
        meta,
        plan,
        catalog,
    }
}

/// All 22 query numbers.
pub fn all_queries() -> Vec<usize> {
    (1..=22).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_scales_with_scale_factor() {
        let sf1 = tpch_catalog(1.0);
        let sf10 = tpch_catalog(10.0);
        assert_eq!(sf1.len(), 8);
        assert_eq!(sf1.table("lineitem").unwrap().row_count, 6_000_000.0);
        assert_eq!(sf10.table("lineitem").unwrap().row_count, 60_000_000.0);
        // Nation/region do not scale.
        assert_eq!(sf10.table("nation").unwrap().row_count, 25.0);
    }

    #[test]
    fn all_22_queries_build_and_derive_cards() {
        let catalog = tpch_catalog(1.0);
        let p = TpchParams::reference();
        for q in all_queries() {
            let plan = tpch_query(q, &p);
            assert_eq!(plan.op.name(), "Output", "q{q} must end in Output");
            let cards = plan
                .derive_cards(&catalog)
                .unwrap_or_else(|e| panic!("q{q}: {e}"));
            assert!(cards.estimated.output_cardinality >= 1.0);
            assert!(cards.actual.output_cardinality >= 1.0);
            assert!(plan.node_count() >= 3, "q{q} too trivial");
        }
    }

    #[test]
    fn queries_touch_expected_tables() {
        let p = TpchParams::reference();
        assert_eq!(
            tpch_query(1, &p).input_tables(),
            vec!["lineitem".to_string()]
        );
        let q3_tables = tpch_query(3, &p).input_tables();
        assert!(q3_tables.contains(&"customer".to_string()));
        assert!(q3_tables.contains(&"orders".to_string()));
        assert!(q3_tables.contains(&"lineitem".to_string()));
        let q9_tables = tpch_query(9, &p).input_tables();
        assert!(q9_tables.contains(&"partsupp".to_string()));
        assert!(q9_tables.contains(&"nation".to_string()));
    }

    #[test]
    fn parameter_variation_changes_actual_selectivities() {
        let mut rng = DetRng::new(4);
        let a = tpch_query(6, &TpchParams::reference());
        let b = tpch_query(6, &TpchParams::draw(&mut rng));
        // Structure identical, selectivities differ.
        assert_eq!(a.node_count(), b.node_count());
        assert_ne!(a, b);
    }

    #[test]
    fn tpch_job_wires_metadata() {
        let job = tpch_job(5, 2, 1.0, &TpchParams::reference(), ClusterId(0));
        assert_eq!(job.meta.name, "tpch_q05_run2");
        assert!(job.meta.recurring);
        assert!(job.meta.normalized_inputs.contains(&"lineitem".to_string()));
        assert_eq!(job.catalog.len(), 8);
        assert!(job.logical_op_count() > 5);
    }
}
