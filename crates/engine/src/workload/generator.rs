//! Synthetic production-workload generator.
//!
//! Generates multi-day, multi-cluster workload traces with the structure reported in
//! Figures 3, 9 and 10 of the paper: every cluster runs a few hundred recurring
//! templates whose instances repeat daily over drifting input sizes, plus 7–20%
//! ad-hoc jobs; clusters differ in scale (job count, operators per job) and the mix
//! shifts from day to day.

use cleo_common::rng::DetRng;

use crate::catalog::Catalog;
use crate::physical::JobMeta;
use crate::types::{ClusterId, DayIndex, JobId, TemplateId};
use crate::workload::recurring::{
    build_cluster_tables, build_template_plan, family_prefix, instantiate_plan, FamilyFactors,
    RecurringTemplate,
};
use crate::workload::JobSpec;

/// Configuration for generating one cluster's workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Which cluster this is (affects the simulator's hardware factor).
    pub cluster: ClusterId,
    /// Number of distinct upstream datasets.
    pub n_tables: usize,
    /// Number of template families (each family shares a common-subexpression prefix).
    pub n_families: usize,
    /// Number of recurring templates per family.
    pub templates_per_family: usize,
    /// Minimum and maximum instances of each template submitted per day.
    pub instances_per_day: (usize, usize),
    /// Fraction of each day's jobs that are ad-hoc (paper: 7%–20%).
    pub adhoc_fraction: f64,
    /// Day-over-day multiplicative drift applied to every table's size.
    pub daily_growth: f64,
    /// RNG seed for this cluster.
    pub seed: u64,
}

impl ClusterConfig {
    /// A small configuration suitable for unit tests (tens of jobs per day).
    pub fn small(cluster: ClusterId) -> Self {
        ClusterConfig {
            cluster,
            n_tables: 12,
            n_families: 6,
            templates_per_family: 2,
            instances_per_day: (2, 4),
            adhoc_fraction: 0.12,
            daily_growth: 1.03,
            seed: 0xC1A0 + cluster.0 as u64,
        }
    }

    /// A configuration that mirrors the relative heterogeneity of the paper's four
    /// clusters (Cluster 1 the largest, Cluster 4 the smallest), scaled down so that a
    /// cluster-day is a few hundred jobs instead of tens of thousands.
    pub fn paper_like(cluster: ClusterId) -> Self {
        // (families, templates/family, instances, tables, adhoc)
        let (families, tpf, inst_hi, tables, adhoc) = match cluster.0 {
            0 => (40, 3, 5, 40, 0.08),
            1 => (28, 3, 5, 32, 0.12),
            2 => (20, 3, 4, 26, 0.16),
            _ => (12, 2, 4, 20, 0.20),
        };
        ClusterConfig {
            cluster,
            n_tables: tables,
            n_families: families,
            templates_per_family: tpf,
            instances_per_day: (2, inst_hi),
            adhoc_fraction: adhoc,
            daily_growth: 1.0 + 0.02 * (cluster.0 as f64 + 1.0),
            seed: 0x5EED_0000 + cluster.0 as u64,
        }
    }
}

/// A generated cluster workload: the base catalog, the recurring templates, and the
/// per-day job specs.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedWorkload {
    /// Cluster the workload belongs to.
    pub cluster: ClusterId,
    /// Base (day-0) catalog.
    pub base_catalog: Catalog,
    /// Recurring templates.
    pub templates: Vec<RecurringTemplate>,
    /// All generated jobs, ordered by day then submission order.
    pub jobs: Vec<JobSpec>,
}

impl GeneratedWorkload {
    /// Jobs submitted on a given day.
    pub fn jobs_on_day(&self, day: DayIndex) -> Vec<&JobSpec> {
        self.jobs.iter().filter(|j| j.meta.day == day).collect()
    }

    /// Number of recurring jobs on a day.
    pub fn recurring_count(&self, day: DayIndex) -> usize {
        self.jobs_on_day(day)
            .iter()
            .filter(|j| j.meta.recurring)
            .count()
    }

    /// Number of ad-hoc jobs on a day.
    pub fn adhoc_count(&self, day: DayIndex) -> usize {
        self.jobs_on_day(day)
            .iter()
            .filter(|j| !j.meta.recurring)
            .count()
    }

    /// Number of distinct recurring templates submitted on a day.
    pub fn template_count(&self, day: DayIndex) -> usize {
        use std::collections::HashSet;
        self.jobs_on_day(day)
            .iter()
            .filter_map(|j| j.meta.template)
            .collect::<HashSet<_>>()
            .len()
    }
}

/// Generate a multi-day workload for one cluster.
pub fn generate_cluster_workload(config: &ClusterConfig, days: u32) -> GeneratedWorkload {
    let mut rng = DetRng::new(config.seed);
    let base_catalog = build_cluster_tables(config.n_tables, &mut rng);
    let table_names: Vec<String> = base_catalog.table_names().map(|s| s.to_string()).collect();

    // Build families and their templates.
    let mut templates = Vec::new();
    let mut family_data = Vec::new();
    for family in 0..config.n_families as u64 {
        let factors = FamilyFactors::draw(&mut rng);
        // Hot tables are preferred as family anchors, so different families (and the
        // ad-hoc jobs) end up sharing inputs.
        let anchor =
            &table_names[(rng.zipf(table_names.len(), 1.1) - 1).min(table_names.len() - 1)];
        let prefix = family_prefix(family, anchor, &factors, &mut rng);
        for t in 0..config.templates_per_family {
            let (plan, inputs) =
                build_template_plan(&prefix, family, t, &base_catalog, &factors, &mut rng);
            let id = TemplateId(family * 1000 + t as u64);
            templates.push(RecurringTemplate {
                id,
                name: format!("c{}_f{family}_t{t}", config.cluster.0),
                family,
                base_plan: plan,
                input_tables: inputs,
                instances_per_day: rng.int_range(
                    config.instances_per_day.0 as u64,
                    config.instances_per_day.1 as u64,
                ) as usize,
            });
        }
        family_data.push((factors, prefix));
    }

    // Generate per-day jobs.
    let mut jobs = Vec::new();
    let mut next_job_id = config.seed << 20;
    for day in 0..days {
        // Per-day catalog: every table drifts with the daily growth trend plus noise.
        let mut day_catalog = base_catalog.clone();
        for name in &table_names {
            let drift = config.daily_growth.powi(day as i32) * rng.lognormal_noise(0.15);
            day_catalog = day_catalog
                .with_scaled_table(name, drift)
                .expect("table exists");
        }

        // Recurring instances.
        let mut day_jobs: Vec<JobSpec> = Vec::new();
        for template in &templates {
            for instance in 0..template.instances_per_day {
                let params = vec![rng.unit(), rng.unit(), rng.uniform(0.0, 10.0)];
                let plan = instantiate_plan(&template.base_plan, &params, &mut rng);
                let meta = JobMeta {
                    id: JobId(next_job_id),
                    cluster: config.cluster,
                    template: Some(template.id),
                    name: format!("{}_{day}_{instance}", template.name),
                    normalized_inputs: template.input_tables.clone(),
                    params,
                    day: DayIndex(day),
                    recurring: true,
                };
                next_job_id += 1;
                day_jobs.push(JobSpec {
                    meta,
                    plan,
                    catalog: day_catalog.clone(),
                });
            }
        }

        // Ad-hoc jobs: target the configured fraction of the day's total job count.
        let recurring_count = day_jobs.len().max(1);
        let adhoc_count = ((recurring_count as f64 * config.adhoc_fraction
            / (1.0 - config.adhoc_fraction))
            .round() as usize)
            .max(1);
        for a in 0..adhoc_count {
            let factors = FamilyFactors::draw(&mut rng);
            // Half the ad-hoc jobs reuse an existing family prefix (they still share
            // subexpressions with the recurring workload); the rest are brand new.
            let prefix = if rng.chance(0.5) && !family_data.is_empty() {
                family_data[rng.index(family_data.len())].1.clone()
            } else {
                let anchor = &table_names[rng.index(table_names.len())];
                family_prefix(10_000 + a as u64, anchor, &factors, &mut rng)
            };
            let (plan, inputs) = build_template_plan(
                &prefix,
                20_000 + a as u64,
                a,
                &base_catalog,
                &factors,
                &mut rng,
            );
            let params = vec![rng.unit(), rng.unit(), rng.uniform(0.0, 10.0)];
            let plan = instantiate_plan(&plan, &params, &mut rng);
            let meta = JobMeta {
                id: JobId(next_job_id),
                cluster: config.cluster,
                template: None,
                name: format!("adhoc_c{}_{day}_{a}", config.cluster.0),
                normalized_inputs: inputs,
                params,
                day: DayIndex(day),
                recurring: false,
            };
            next_job_id += 1;
            day_jobs.push(JobSpec {
                meta,
                plan,
                catalog: day_catalog.clone(),
            });
        }

        jobs.extend(day_jobs);
    }

    GeneratedWorkload {
        cluster: config.cluster,
        base_catalog,
        templates,
        jobs,
    }
}

/// Summary statistics of one cluster's workload, used by the sharded serving
/// tier to order cross-cluster fallback donors: a cold shard borrows models
/// from the cluster whose workload looks most like its own.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// The profiled cluster.
    pub cluster: ClusterId,
    /// Mean jobs submitted per day.
    pub jobs_per_day: f64,
    /// Mean physical operators per job plan.
    pub mean_operators_per_job: f64,
    /// Fraction of jobs that are ad-hoc.
    pub adhoc_fraction: f64,
    /// Mean `ln(1 + base table rows)` over the jobs' primary inputs.
    pub mean_log_input_rows: f64,
}

impl WorkloadProfile {
    /// Profile a generated workload.
    pub fn of(workload: &GeneratedWorkload) -> WorkloadProfile {
        let jobs = &workload.jobs;
        let n = jobs.len().max(1) as f64;
        let days = jobs
            .iter()
            .map(|j| j.meta.day.0)
            .max()
            .map(|d| d as f64 + 1.0)
            .unwrap_or(1.0);
        let ops: usize = jobs.iter().map(|j| j.plan.node_count()).sum();
        let adhoc = jobs.iter().filter(|j| !j.meta.recurring).count();
        let log_rows: f64 = jobs
            .iter()
            .map(|j| {
                j.meta
                    .normalized_inputs
                    .first()
                    .and_then(|t| j.catalog.table(t).ok())
                    .map(|t| (1.0 + t.row_count).ln())
                    .unwrap_or(0.0)
            })
            .sum();
        WorkloadProfile {
            cluster: workload.cluster,
            jobs_per_day: jobs.len() as f64 / days,
            mean_operators_per_job: ops as f64 / n,
            adhoc_fraction: adhoc as f64 / n,
            mean_log_input_rows: log_rows / n,
        }
    }

    /// Scale-free workload distance: relative (log-ratio) differences for the
    /// positive magnitudes plus the absolute ad-hoc-fraction gap.  Symmetric
    /// and deterministic, so fallback chains derived from it are too.
    pub fn distance(&self, other: &WorkloadProfile) -> f64 {
        // `|ln(a+1) − ln(b+1)|` rather than `|ln((a+1)/(b+1))|`: algebraically
        // the same, but bit-exactly symmetric in its arguments.
        let log_ratio = |a: f64, b: f64| ((a + 1.0).ln() - (b + 1.0).ln()).abs();
        log_ratio(self.jobs_per_day, other.jobs_per_day)
            + log_ratio(self.mean_operators_per_job, other.mean_operators_per_job)
            + log_ratio(self.mean_log_input_rows, other.mean_log_input_rows)
            + (self.adhoc_fraction - other.adhoc_fraction).abs()
    }
}

/// Interleave several clusters' workloads into one serving stream, ordered by
/// day, then cluster, then job id — the shape one sharded serving tier sees
/// when every cluster submits against it.  The order is a pure function of the
/// inputs (no thread-count or iteration-order dependence), which the
/// cross-shard determinism tests rely on.
pub fn interleave_jobs<'a>(
    workloads: impl IntoIterator<Item = &'a GeneratedWorkload>,
) -> Vec<&'a JobSpec> {
    let mut jobs: Vec<&JobSpec> = workloads.into_iter().flat_map(|w| w.jobs.iter()).collect();
    jobs.sort_by_key(|j| (j.meta.day, j.meta.cluster, j.meta.id));
    jobs
}

/// Generate the four-cluster, multi-day workload used by the headline experiments.
pub fn generate_all_clusters(days: u32, paper_like: bool) -> Vec<GeneratedWorkload> {
    (0u8..4)
        .map(|c| {
            let config = if paper_like {
                ClusterConfig::paper_like(ClusterId(c))
            } else {
                ClusterConfig::small(ClusterId(c))
            };
            generate_cluster_workload(&config, days)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cluster_generates_recurring_and_adhoc_jobs() {
        let config = ClusterConfig::small(ClusterId(0));
        let w = generate_cluster_workload(&config, 2);
        assert_eq!(
            w.templates.len(),
            config.n_families * config.templates_per_family
        );
        assert!(!w.jobs.is_empty());
        let day0 = DayIndex(0);
        let rec = w.recurring_count(day0);
        let adhoc = w.adhoc_count(day0);
        assert!(rec > 0 && adhoc > 0);
        let frac = adhoc as f64 / (rec + adhoc) as f64;
        assert!(frac > 0.03 && frac < 0.35, "ad-hoc fraction {frac}");
        assert!(w.template_count(day0) > 0);
    }

    #[test]
    fn workload_is_deterministic_for_a_seed() {
        let config = ClusterConfig::small(ClusterId(1));
        let a = generate_cluster_workload(&config, 1);
        let b = generate_cluster_workload(&config, 1);
        assert_eq!(a.jobs.len(), b.jobs.len());
        assert_eq!(a.jobs[0].meta.name, b.jobs[0].meta.name);
        assert_eq!(a.jobs[0].plan, b.jobs[0].plan);
    }

    #[test]
    fn recurring_instances_share_template_structure_across_days() {
        let config = ClusterConfig::small(ClusterId(2));
        let w = generate_cluster_workload(&config, 2);
        let template = w.templates[0].id;
        let day0: Vec<_> = w
            .jobs
            .iter()
            .filter(|j| j.meta.template == Some(template) && j.meta.day == DayIndex(0))
            .collect();
        let day1: Vec<_> = w
            .jobs
            .iter()
            .filter(|j| j.meta.template == Some(template) && j.meta.day == DayIndex(1))
            .collect();
        assert!(!day0.is_empty() && !day1.is_empty());
        // Same structure (node count, operator frequencies) across days.
        assert_eq!(
            day0[0].plan.operator_frequency(),
            day1[0].plan.operator_frequency()
        );
        // But input sizes drift.
        let t0 = day0[0].catalog.table("dataset_000").unwrap().row_count;
        let t1 = day1[0].catalog.table("dataset_000").unwrap().row_count;
        assert_ne!(t0, t1);
    }

    #[test]
    fn paper_like_clusters_are_heterogeneous() {
        let all = generate_all_clusters(1, true);
        assert_eq!(all.len(), 4);
        let counts: Vec<usize> = all.iter().map(|w| w.jobs.len()).collect();
        // Cluster 1 should have noticeably more jobs than cluster 4.
        assert!(counts[0] > counts[3] * 2, "{counts:?}");
        // Ad-hoc fraction rises from cluster 1 to cluster 4.
        let fracs: Vec<f64> = all
            .iter()
            .map(|w| {
                let d = DayIndex(0);
                w.adhoc_count(d) as f64 / w.jobs_on_day(d).len() as f64
            })
            .collect();
        assert!(fracs[3] > fracs[0], "{fracs:?}");
    }

    #[test]
    fn interleave_orders_by_day_then_cluster() {
        let all = generate_all_clusters(2, false);
        let stream = interleave_jobs(&all);
        assert_eq!(
            stream.len(),
            all.iter().map(|w| w.jobs.len()).sum::<usize>()
        );
        for pair in stream.windows(2) {
            let a = (pair[0].meta.day, pair[0].meta.cluster, pair[0].meta.id);
            let b = (pair[1].meta.day, pair[1].meta.cluster, pair[1].meta.id);
            assert!(a <= b, "stream out of order: {a:?} then {b:?}");
        }
        // Every cluster appears on day 0.
        use std::collections::HashSet;
        let day0: HashSet<u8> = stream
            .iter()
            .filter(|j| j.meta.day == DayIndex(0))
            .map(|j| j.meta.cluster.0)
            .collect();
        assert_eq!(day0.len(), 4);
    }

    #[test]
    fn profiles_separate_heterogeneous_clusters() {
        let all = generate_all_clusters(1, true);
        let profiles: Vec<WorkloadProfile> = all.iter().map(WorkloadProfile::of).collect();
        // Cluster 1 (largest) is further from cluster 4 (smallest) than from
        // cluster 2 (the next largest): similarity ordering is meaningful.
        let d12 = profiles[0].distance(&profiles[1]);
        let d14 = profiles[0].distance(&profiles[3]);
        assert!(d14 > d12, "d14 {d14} vs d12 {d12}");
        // Distance is symmetric and zero on itself.
        assert_eq!(d12, profiles[1].distance(&profiles[0]));
        assert_eq!(profiles[0].distance(&profiles[0]), 0.0);
        assert!(profiles.iter().all(|p| p.jobs_per_day > 0.0));
    }

    #[test]
    fn job_ids_are_unique_across_the_trace() {
        let w = generate_cluster_workload(&ClusterConfig::small(ClusterId(3)), 3);
        let mut ids = std::collections::HashSet::new();
        for j in &w.jobs {
            assert!(ids.insert(j.meta.id), "duplicate job id {:?}", j.meta.id);
        }
    }
}
