//! Workload generators.
//!
//! The paper's training signal comes from two workloads: Microsoft's internal
//! production trace (Figures 2, 3, 9, 10 describe its shape) and the TPC-H benchmark
//! (Section 6.6.2).  Neither is available outside Microsoft, so this module generates
//! synthetic equivalents that preserve the properties Cleo relies on:
//!
//! * [`recurring`] — recurring-job templates organised into *families* that share
//!   common subexpression prefixes, with day-over-day input-size drift, parameter
//!   variation, and systematic cardinality-estimation errors per template,
//! * [`generator`] — whole synthetic clusters: a mix of recurring and ad-hoc jobs per
//!   day across four heterogeneous clusters,
//! * [`tpch`] — the TPC-H schema with scale-factor-sized statistics and logical plans
//!   for all 22 queries.

pub mod generator;
pub mod recurring;
pub mod tpch;

use crate::catalog::Catalog;
use crate::logical::LogicalNode;
use crate::physical::JobMeta;

/// One job ready to be optimized: metadata, the logical plan, and the catalog snapshot
/// (with per-instance input sizes) the optimizer should use.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Job metadata (id, cluster, template, inputs, parameters, day, recurring flag).
    pub meta: JobMeta,
    /// The logical plan submitted by the job.
    pub plan: LogicalNode,
    /// Catalog snapshot describing this instance's input sizes.
    pub catalog: Catalog,
}

impl JobSpec {
    /// Number of logical operators in the job's plan.
    pub fn logical_op_count(&self) -> usize {
        self.plan.node_count()
    }
}
