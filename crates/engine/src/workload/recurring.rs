//! Recurring-job templates.
//!
//! Section 2.2: "a recurring job consists of a script template that accepts different
//! input parameters ... each instance runs on different input data, parameters and
//! [has] potentially different statements", and Section 3.1: recurring jobs across a
//! cluster share *common subexpressions* because they read the same upstream datasets.
//!
//! This module models both properties.  Templates are grouped into **families**; every
//! template in a family starts from the same prefix fragment (scan → filter →
//! optionally a UDF processor over a shared input), so the prefix subgraph recurs
//! across many distinct jobs — the structure the operator-subgraph model exploits.
//! Each template also has *systematic* cardinality-estimation errors (the estimated
//! selectivities differ from the actual ones by per-template factors that persist
//! across instances), which is exactly the regime in which learned per-template
//! adjustments generalise.

use cleo_common::rng::DetRng;

use crate::catalog::{Catalog, ColumnDef, TableDef};
use crate::logical::LogicalNode;
use crate::types::TemplateId;

/// The structural recipe of one recurring template.
#[derive(Debug, Clone, PartialEq)]
pub struct RecurringTemplate {
    /// Template id (stable across days).
    pub id: TemplateId,
    /// Template (script) name.
    pub name: String,
    /// Family id: templates with the same family share their prefix subexpression.
    pub family: u64,
    /// Baseline plan with the template's estimated and baseline-actual selectivities.
    pub base_plan: LogicalNode,
    /// Tables read by the plan.
    pub input_tables: Vec<String>,
    /// How many instances of this template are submitted per day.
    pub instances_per_day: usize,
}

/// Hidden, per-family systematic estimation error factors.  Estimated selectivities
/// are generated first; actuals are the estimates multiplied by these factors (values
/// far from 1.0 mean the optimizer's estimate is badly off — systematically, the same
/// way, every day).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FamilyFactors {
    /// Multiplicative error of the prefix filter's selectivity estimate.
    pub filter_error: f64,
    /// Multiplicative error of join fanout estimates.
    pub join_error: f64,
    /// Multiplicative error of aggregate group-count estimates.
    pub agg_error: f64,
    /// Hidden per-row cost factor of the family's UDF processor.
    pub udf_cost_factor: f64,
}

impl FamilyFactors {
    /// Draw a family's hidden factors.
    pub fn draw(rng: &mut DetRng) -> FamilyFactors {
        FamilyFactors {
            // Estimation errors span roughly 0.05×–20×, matching the order-of-magnitude
            // errors reported for production estimates.
            filter_error: rng.lognormal_noise(1.2),
            join_error: rng.lognormal_noise(0.9),
            agg_error: rng.lognormal_noise(1.0),
            // UDF per-row costs span ~0.2×–60× of a plain filter (log-uniform).
            udf_cost_factor: (rng.uniform(0.2f64.ln(), 60.0f64.ln())).exp(),
        }
    }
}

/// Create the pool of input tables for one cluster.
///
/// Table sizes are log-uniform between ~10⁵ and ~10⁹ rows, with a handful of "hot"
/// upstream datasets that most templates read (giving the workload its shared-input
/// structure).
pub fn build_cluster_tables(n_tables: usize, rng: &mut DetRng) -> Catalog {
    let mut catalog = Catalog::new();
    for i in 0..n_tables.max(1) {
        let magnitude = rng.uniform(5.0, 9.0);
        let rows = 10f64.powf(magnitude);
        let n_cols = rng.int_range(3, 10) as usize;
        let columns: Vec<ColumnDef> = (0..n_cols)
            .map(|c| {
                ColumnDef::new(
                    format!("c{c}"),
                    rng.uniform(4.0, 64.0),
                    rng.uniform(0.001, 1.0),
                )
            })
            .collect();
        let partitions = ((rows / 4e6).ceil() as usize).clamp(1, 500);
        catalog.add_table(TableDef::new(
            format!("dataset_{i:03}"),
            columns,
            rows,
            partitions,
        ));
    }
    catalog
}

/// Build the shared prefix fragment of a family: scan → filter → optional UDF.
pub fn family_prefix(
    family: u64,
    table: &str,
    factors: &FamilyFactors,
    rng: &mut DetRng,
) -> LogicalNode {
    let est_sel = rng.uniform(0.01, 0.6);
    let actual_sel = (est_sel * factors.filter_error).clamp(1e-6, 1.0);
    let mut node =
        LogicalNode::get(table).filter(format!("family{family}_pred"), est_sel, actual_sel);
    if rng.chance(0.6) {
        let est_udf_sel = rng.uniform(0.2, 1.0);
        let actual_udf_sel = (est_udf_sel * rng.lognormal_noise(0.4)).clamp(1e-6, 2.0);
        node = node.process(
            format!("Udf_F{family}"),
            est_udf_sel,
            actual_udf_sel,
            factors.udf_cost_factor,
        );
    }
    node
}

/// Build one template's full plan on top of its family prefix.
pub fn build_template_plan(
    prefix: &LogicalNode,
    family: u64,
    template_index: usize,
    catalog: &Catalog,
    factors: &FamilyFactors,
    rng: &mut DetRng,
) -> (LogicalNode, Vec<String>) {
    let mut plan = prefix.clone();
    let mut inputs = plan.input_tables();

    // Optional join against a (usually smaller) dimension table.
    if rng.chance(0.65) {
        let names: Vec<String> = catalog.table_names().map(|s| s.to_string()).collect();
        let dim = names[rng.index(names.len())].clone();
        inputs.push(dim.clone());
        let mut right = LogicalNode::get(&dim);
        if rng.chance(0.5) {
            let est = rng.uniform(0.05, 0.8);
            let actual = (est * rng.lognormal_noise(0.5)).clamp(1e-6, 1.0);
            right = right.filter(format!("dim_pred_f{family}_{template_index}"), est, actual);
        }
        let est_fanout = rng.uniform(0.3, 1.5);
        let actual_fanout = (est_fanout * factors.join_error).max(1e-6);
        plan = plan.join(
            right,
            vec![format!("key{}", rng.int_range(0, 3))],
            est_fanout,
            actual_fanout,
        );
    }

    // Optional projection.
    if rng.chance(0.5) {
        plan = plan.project(rng.uniform(0.3, 0.9));
    }

    // Aggregation is very common in analytical recurring jobs.
    if rng.chance(0.8) {
        let est_groups = rng.uniform(1e-4, 0.2);
        let actual_groups = (est_groups * factors.agg_error).clamp(1e-7, 1.0);
        plan = plan.aggregate(
            vec![format!("g{}", rng.int_range(0, 4))],
            est_groups,
            actual_groups,
        );
    }

    // Occasional ordered output (top-k style reports).
    if rng.chance(0.3) {
        plan = plan.sort(vec!["g0".into()]);
    }

    let sink = format!("output_f{family}_t{template_index}");
    (plan.output(sink), inputs)
}

/// Per-instance variation of a template plan: jitter the *actual* selectivities (data
/// drift between instances) while leaving the *estimates* untouched (the optimizer's
/// statistics are stale), and couple part of the drift to the job parameters so that
/// parameters carry real signal.
pub fn instantiate_plan(base: &LogicalNode, params: &[f64], rng: &mut DetRng) -> LogicalNode {
    use crate::logical::LogicalOp;
    let mut plan = base.clone();
    let param_shift = 0.8 + 0.4 * params.first().copied().unwrap_or(0.5);
    fn walk(node: &mut LogicalNode, param_shift: f64, rng: &mut DetRng) {
        match &mut node.op {
            LogicalOp::Filter {
                actual_selectivity, ..
            } => {
                *actual_selectivity =
                    (*actual_selectivity * param_shift * rng.lognormal_noise(0.05))
                        .clamp(1e-7, 1.0);
            }
            LogicalOp::Join { actual_fanout, .. } => {
                *actual_fanout = (*actual_fanout * rng.lognormal_noise(0.05)).max(1e-7);
            }
            LogicalOp::Aggregate {
                actual_group_fraction,
                ..
            } => {
                *actual_group_fraction =
                    (*actual_group_fraction * rng.lognormal_noise(0.05)).clamp(1e-7, 1.0);
            }
            LogicalOp::Process {
                actual_selectivity, ..
            } => {
                *actual_selectivity = (*actual_selectivity * rng.lognormal_noise(0.05)).max(1e-7);
            }
            _ => {}
        }
        for c in &mut node.children {
            walk(c, param_shift, rng);
        }
    }
    walk(&mut plan, param_shift, rng);
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_tables_have_varied_sizes() {
        let mut rng = DetRng::new(1);
        let catalog = build_cluster_tables(25, &mut rng);
        assert_eq!(catalog.len(), 25);
        let sizes: Vec<f64> = catalog
            .table_names()
            .map(|n| catalog.table(n).unwrap().row_count)
            .collect();
        let min = sizes.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = sizes.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 100.0, "sizes should span orders of magnitude");
    }

    #[test]
    fn family_prefix_is_deterministic_per_seed() {
        let mut rng_a = DetRng::new(7);
        let mut rng_b = DetRng::new(7);
        let factors = FamilyFactors {
            filter_error: 2.0,
            join_error: 1.0,
            agg_error: 1.0,
            udf_cost_factor: 5.0,
        };
        let a = family_prefix(1, "dataset_000", &factors, &mut rng_a);
        let b = family_prefix(1, "dataset_000", &factors, &mut rng_b);
        assert_eq!(a, b);
    }

    #[test]
    fn template_plan_ends_in_output_and_reads_prefix_table() {
        let mut rng = DetRng::new(3);
        let catalog = build_cluster_tables(10, &mut rng);
        let factors = FamilyFactors::draw(&mut rng);
        let prefix = family_prefix(0, "dataset_001", &factors, &mut rng);
        let (plan, inputs) = build_template_plan(&prefix, 0, 0, &catalog, &factors, &mut rng);
        assert_eq!(plan.op.name(), "Output");
        assert!(inputs.contains(&"dataset_001".to_string()));
        assert!(plan.node_count() >= 3);
    }

    #[test]
    fn instantiation_changes_actuals_but_not_estimates() {
        use crate::logical::LogicalOp;
        let mut rng = DetRng::new(5);
        let base = LogicalNode::get("t").filter("p", 0.3, 0.1).output("o");
        let inst = instantiate_plan(&base, &[0.9], &mut rng);
        fn find_filter(node: &LogicalNode) -> Option<(f64, f64)> {
            if let LogicalOp::Filter {
                est_selectivity,
                actual_selectivity,
                ..
            } = &node.op
            {
                return Some((*est_selectivity, *actual_selectivity));
            }
            node.children.iter().find_map(find_filter)
        }
        let (est_b, act_b) = find_filter(&base).unwrap();
        let (est_i, act_i) = find_filter(&inst).unwrap();
        assert_eq!(est_b, est_i, "estimates must stay fixed across instances");
        assert_ne!(act_b, act_i, "actuals drift between instances");
    }

    #[test]
    fn family_factors_span_wide_error_range() {
        let mut rng = DetRng::new(11);
        let factors: Vec<FamilyFactors> = (0..200).map(|_| FamilyFactors::draw(&mut rng)).collect();
        let max_err = factors
            .iter()
            .map(|f| f.filter_error)
            .fold(0.0f64, f64::max);
        let min_err = factors
            .iter()
            .map(|f| f.filter_error)
            .fold(f64::INFINITY, f64::min);
        assert!(max_err > 2.0, "some families over-estimate heavily");
        assert!(min_err < 0.5, "some families under-estimate heavily");
        assert!(factors.iter().all(|f| f.udf_cost_factor >= 0.2));
        let max_udf = factors
            .iter()
            .map(|f| f.udf_cost_factor)
            .fold(0.0f64, f64::max);
        assert!(
            max_udf > 10.0,
            "some UDFs are far more expensive than relational operators"
        );
    }
}
