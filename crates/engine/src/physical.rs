//! Physical query plans.
//!
//! A [`PhysicalNode`] tree is what the optimizer produces and what the execution
//! simulator runs.  Each node records the operator implementation, the compile-time
//! *estimated* statistics (what any cost model may look at), the *actual* statistics
//! (used only by the simulator and by the "perfect cardinality" ablation), the
//! partition count chosen for it, and the derived physical properties (partitioning
//! and sort order) that Cascades tracks.

use std::sync::{Arc, OnceLock};

use crate::types::{OpId, OpStats};

/// Physical operator implementations, mirroring the SCOPE operators named in the paper
/// (Extract, Exchange/Shuffle, Reduce/Process, hash vs merge join, hash vs stream
/// aggregation, local aggregation, sort, output).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhysicalOpKind {
    /// Leaf scan of a stored table; decides the initial partition count.
    Extract,
    /// Row filter.
    Filter,
    /// Column projection.
    Project,
    /// Hash equi-join (build on the smaller input).
    HashJoin,
    /// Sort-merge equi-join (requires both inputs sorted on the join keys).
    MergeJoin,
    /// Hash-based group-by aggregation.
    HashAggregate,
    /// Stream (sorted) group-by aggregation (requires input sorted on the group keys).
    StreamAggregate,
    /// Partial (per-partition) aggregation inserted below an exchange.
    LocalAggregate,
    /// Full sort on a set of keys.
    Sort,
    /// Exchange (shuffle): repartitions data between stages and sets the partition
    /// count for the consumer stage.
    Exchange,
    /// User-defined processor/reducer.
    Process,
    /// Terminal output writer.
    Output,
}

impl PhysicalOpKind {
    /// Stable operator name used in signatures and reports.
    pub fn name(&self) -> &'static str {
        match self {
            PhysicalOpKind::Extract => "Extract",
            PhysicalOpKind::Filter => "Filter",
            PhysicalOpKind::Project => "Project",
            PhysicalOpKind::HashJoin => "HashJoin",
            PhysicalOpKind::MergeJoin => "MergeJoin",
            PhysicalOpKind::HashAggregate => "HashAggregate",
            PhysicalOpKind::StreamAggregate => "StreamAggregate",
            PhysicalOpKind::LocalAggregate => "LocalAggregate",
            PhysicalOpKind::Sort => "Sort",
            PhysicalOpKind::Exchange => "Exchange",
            PhysicalOpKind::Process => "Process",
            PhysicalOpKind::Output => "Output",
        }
    }

    /// All physical operator kinds (used to pre-build per-operator models).
    pub fn all() -> &'static [PhysicalOpKind] {
        &[
            PhysicalOpKind::Extract,
            PhysicalOpKind::Filter,
            PhysicalOpKind::Project,
            PhysicalOpKind::HashJoin,
            PhysicalOpKind::MergeJoin,
            PhysicalOpKind::HashAggregate,
            PhysicalOpKind::StreamAggregate,
            PhysicalOpKind::LocalAggregate,
            PhysicalOpKind::Sort,
            PhysicalOpKind::Exchange,
            PhysicalOpKind::Process,
            PhysicalOpKind::Output,
        ]
    }

    /// True for operators that materialise or block the pipeline (their parents
    /// typically see a different latency profile than over streaming children).
    pub fn is_blocking(&self) -> bool {
        matches!(
            self,
            PhysicalOpKind::Sort
                | PhysicalOpKind::HashAggregate
                | PhysicalOpKind::HashJoin
                | PhysicalOpKind::Exchange
        )
    }

    /// True for the partitioning operators that establish a stage and pick the stage's
    /// partition count (Section 2.1: Extract and Exchange).
    pub fn is_partitioning(&self) -> bool {
        matches!(self, PhysicalOpKind::Extract | PhysicalOpKind::Exchange)
    }

    /// Logical operator name this implementation corresponds to (used by the
    /// operator-subgraphApprox signature, which works on logical frequencies).
    pub fn logical_name(&self) -> &'static str {
        match self {
            PhysicalOpKind::Extract => "Get",
            PhysicalOpKind::Filter => "Filter",
            PhysicalOpKind::Project => "Project",
            PhysicalOpKind::HashJoin | PhysicalOpKind::MergeJoin => "Join",
            PhysicalOpKind::HashAggregate
            | PhysicalOpKind::StreamAggregate
            | PhysicalOpKind::LocalAggregate => "Aggregate",
            PhysicalOpKind::Sort => "Sort",
            PhysicalOpKind::Exchange => "Exchange",
            PhysicalOpKind::Process => "Process",
            PhysicalOpKind::Output => "Output",
        }
    }
}

/// Structure-derived values cached per node so the optimizer's costing hot loop
/// never re-walks a subtree it has already summarised.
///
/// `node_count`/`depth` are computed bottom-up at construction (children are
/// already built, so each is O(children)).  The two memo slots are filled lazily
/// on first use by `cleo-core`'s signature layer, which keeps the hashing scheme
/// out of the engine crate.  All cached values depend **only** on the structural
/// fields (`kind`, `label`, `children`); statistics, ids, partition counts, and
/// physical properties may be mutated freely afterwards.  Callers that mutate
/// `kind`/`label`/`children` after construction must do so *before* the first
/// signature query (in practice only tests do this) or rebuild the node.
#[derive(Debug, Default)]
struct StructureCache {
    node_count: usize,
    depth: usize,
    /// Memoised exact operator-subgraph signature.
    subgraph_signature: OnceLock<u64>,
    /// Memoised, pre-sorted logical-operator frequency hashes (the unordered
    /// multiset the operator-subgraphApprox signature combines).
    logical_freq_hashes: OnceLock<Box<[u64]>>,
}

impl Clone for StructureCache {
    fn clone(&self) -> Self {
        // Cloned nodes keep the structural counts (label/stat mutations cannot
        // change them) but drop the memoised signatures: a clone is exactly what
        // code mutates (directly, or through `Arc::make_mut` during plan
        // rewrites), and a stale signature memo on a relabelled clone would be a
        // correctness bug.  Refilling is cheap — the clone's children keep their
        // own memos, so recomputation is O(children), not O(subtree).
        StructureCache {
            node_count: self.node_count,
            depth: self.depth,
            subgraph_signature: OnceLock::new(),
            logical_freq_hashes: OnceLock::new(),
        }
    }
}

/// A node in the physical plan tree.
///
/// Children are held behind [`Arc`] so plan enumeration can *share* subtrees
/// between candidate alternatives instead of deep-cloning them per alternative;
/// mutation through a shared child goes through [`Arc::make_mut`] (copy on
/// write), which [`PhysicalNode::visit_mut`] does transparently.
#[derive(Debug, Clone)]
pub struct PhysicalNode {
    /// Unique id within the plan (assigned by [`PhysicalPlan::assign_ids`]).
    pub id: OpId,
    /// Operator implementation.
    pub kind: PhysicalOpKind,
    /// Operator detail: table name for Extract, predicate for Filter, UDF name for
    /// Process, join keys for joins, sink for Output.  Part of the subgraph signature.
    pub label: String,
    /// Children (inputs), shared between plan alternatives.
    pub children: Vec<Arc<PhysicalNode>>,
    /// Compile-time estimated statistics — the only statistics cost models may use.
    pub est: OpStats,
    /// Actual statistics — used by the simulator and by perfect-cardinality ablations.
    pub act: OpStats,
    /// Partition count (degree of parallelism) assigned to this operator.
    pub partition_count: usize,
    /// Columns the output is hash-partitioned on (empty = round-robin / unknown).
    pub partitioned_on: Vec<String>,
    /// Columns the output is sorted on (empty = unsorted).
    pub sorted_on: Vec<String>,
    /// Hidden per-row cost multiplier for UDF operators (1.0 otherwise).  The default
    /// cost model deliberately ignores this, mirroring the "custom user code as black
    /// box" problem of Section 2.4.
    pub udf_cost_factor: f64,
    /// Cached structure-derived values (see [`StructureCache`]).
    structure: StructureCache,
}

impl PartialEq for PhysicalNode {
    fn eq(&self, other: &Self) -> bool {
        // The structure cache is derived state and excluded from equality.
        self.id == other.id
            && self.kind == other.kind
            && self.label == other.label
            && self.est == other.est
            && self.act == other.act
            && self.partition_count == other.partition_count
            && self.partitioned_on == other.partitioned_on
            && self.sorted_on == other.sorted_on
            && self.udf_cost_factor == other.udf_cost_factor
            && self.children == other.children
    }
}

impl PhysicalNode {
    /// Create a node with defaulted statistics and properties.
    pub fn new(
        kind: PhysicalOpKind,
        label: impl Into<String>,
        children: Vec<PhysicalNode>,
    ) -> Self {
        Self::new_shared(kind, label, children.into_iter().map(Arc::new).collect())
    }

    /// Create a node over already-shared children — the enumeration path, where
    /// one child subtree backs many candidate parents without being cloned.
    pub fn new_shared(
        kind: PhysicalOpKind,
        label: impl Into<String>,
        children: Vec<Arc<PhysicalNode>>,
    ) -> Self {
        let structure = StructureCache {
            node_count: 1 + children.iter().map(|c| c.node_count()).sum::<usize>(),
            depth: 1 + children.iter().map(|c| c.depth()).max().unwrap_or(0),
            subgraph_signature: OnceLock::new(),
            logical_freq_hashes: OnceLock::new(),
        };
        PhysicalNode {
            id: OpId(0),
            kind,
            label: label.into(),
            children,
            est: OpStats::default(),
            act: OpStats::default(),
            partition_count: 1,
            partitioned_on: Vec::new(),
            sorted_on: Vec::new(),
            udf_cost_factor: 1.0,
            structure,
        }
    }

    /// Number of operators in the subtree rooted here (cached at construction;
    /// debug builds recompute and panic if `children` was mutated in place).
    pub fn node_count(&self) -> usize {
        debug_assert_eq!(
            self.structure.node_count,
            1 + self.children.iter().map(|c| c.node_count()).sum::<usize>(),
            "stale node_count cache: children were mutated in place after construction"
        );
        self.structure.node_count
    }

    /// Depth of the subtree rooted here (single node = 1; cached at
    /// construction, with the same debug staleness tripwire as `node_count`).
    pub fn depth(&self) -> usize {
        debug_assert_eq!(
            self.structure.depth,
            1 + self.children.iter().map(|c| c.depth()).max().unwrap_or(0),
            "stale depth cache: children were mutated in place after construction"
        );
        self.structure.depth
    }

    /// The memoised exact-subgraph signature: computed once by `compute` on first
    /// call, then returned from the cache.  The signature layer in `cleo-core`
    /// supplies `compute`; it must be a pure function of the structural fields
    /// (`kind`, `label`, `children`).  Debug builds recompute on every access
    /// and panic on a mismatch, so a structural mutation after the first
    /// signature query (the one way to invalidate the memo — clones reset it)
    /// is caught in tests instead of silently serving a stale hash.
    pub fn memo_subgraph_signature(&self, compute: impl Fn(&PhysicalNode) -> u64) -> u64 {
        let cached = *self
            .structure
            .subgraph_signature
            .get_or_init(|| compute(self));
        debug_assert_eq!(
            cached,
            compute(self),
            "stale subgraph-signature memo: kind/label/children were mutated in \
             place after the first signature query (clone the node instead)"
        );
        cached
    }

    /// The memoised, sorted multiset of logical-operator frequency hashes under
    /// (and including) this node; `compute` runs once on first call.  No
    /// dedicated staleness tripwire: the frequency multiset is a function of
    /// the subtree's kinds, which the subgraph-signature tripwire above already
    /// covers (and recomputing here would allocate, breaking the zero-alloc
    /// guarantee in debug test builds).
    pub fn memo_logical_freq_hashes(
        &self,
        compute: impl FnOnce(&PhysicalNode) -> Box<[u64]>,
    ) -> &[u64] {
        self.structure
            .logical_freq_hashes
            .get_or_init(|| compute(self))
    }

    /// Visit every node (pre-order).
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a PhysicalNode)) {
        f(self);
        for c in &self.children {
            c.visit(f);
        }
    }

    /// Visit every node mutably (pre-order).  Shared children are copied on
    /// write ([`Arc::make_mut`]), so mutations never leak into other plans that
    /// share the subtree.
    pub fn visit_mut(&mut self, f: &mut impl FnMut(&mut PhysicalNode)) {
        f(self);
        for c in &mut self.children {
            Arc::make_mut(c).visit_mut(f);
        }
    }

    /// Collect references to all nodes (pre-order).
    pub fn collect(&self) -> Vec<&PhysicalNode> {
        let mut out = Vec::with_capacity(self.node_count());
        self.visit(&mut |n| out.push(n));
        out
    }

    /// Find a node by id.
    pub fn find(&self, id: OpId) -> Option<&PhysicalNode> {
        if self.id == id {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(id))
    }

    /// Frequency of logical operator names in this subtree (sorted by name).
    pub fn logical_frequency(&self) -> Vec<(String, usize)> {
        use std::collections::BTreeMap;
        let mut acc = BTreeMap::new();
        self.visit(&mut |n| {
            *acc.entry(n.kind.logical_name().to_string())
                .or_insert(0usize) += 1;
        });
        acc.into_iter().collect()
    }

    /// Names of all extracted tables in this subtree (depth-first order).
    pub fn input_tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit(&mut |n| {
            if n.kind == PhysicalOpKind::Extract {
                out.push(n.label.clone());
            }
        });
        out
    }

    /// Sum of leaf (Extract) estimated output cardinalities under this node — the
    /// "base cardinality" feature.
    pub fn base_cardinality_est(&self) -> f64 {
        let mut total = 0.0;
        self.visit(&mut |n| {
            if n.kind == PhysicalOpKind::Extract {
                total += n.est.output_cardinality;
            }
        });
        total
    }
}

/// Metadata identifying the job a plan belongs to.
#[derive(Debug, Clone, PartialEq)]
pub struct JobMeta {
    /// Unique job id.
    pub id: crate::types::JobId,
    /// Cluster the job runs on.
    pub cluster: crate::types::ClusterId,
    /// Template id for recurring jobs, `None` for ad-hoc jobs.
    pub template: Option<crate::types::TemplateId>,
    /// Job (script) name.
    pub name: String,
    /// Normalised input names (dates/numbers stripped) — the "input template" used by
    /// the operator-input model.
    pub normalized_inputs: Vec<String>,
    /// Job parameters (the recurring script's arguments).
    pub params: Vec<f64>,
    /// Day the job was submitted.
    pub day: crate::types::DayIndex,
    /// True for recurring jobs, false for ad-hoc ones.
    pub recurring: bool,
}

/// A complete physical plan: metadata plus the operator tree.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    /// Job metadata.
    pub meta: JobMeta,
    /// Root operator (normally an Output).
    pub root: PhysicalNode,
}

impl PhysicalPlan {
    /// Create a plan and assign sequential operator ids (pre-order).
    pub fn new(meta: JobMeta, mut root: PhysicalNode) -> Self {
        let mut next = 0usize;
        root.visit_mut(&mut |n| {
            n.id = OpId(next);
            next += 1;
        });
        PhysicalPlan { meta, root }
    }

    /// Create a plan from a shared enumeration root.  The root itself is
    /// unwrapped (or cloned if other alternatives still hold it); subtrees stay
    /// shared and are only copied if a later rewrite actually mutates them.
    pub fn from_shared(meta: JobMeta, root: Arc<PhysicalNode>) -> Self {
        // `Arc::unwrap_or_clone` needs Rust 1.76; stay on the 1.75 MSRV.
        let root = Arc::try_unwrap(root).unwrap_or_else(|arc| (*arc).clone());
        Self::new(meta, root)
    }

    /// Re-assign sequential operator ids (after structural rewrites).
    pub fn assign_ids(&mut self) {
        let mut next = 0usize;
        self.root.visit_mut(&mut |n| {
            n.id = OpId(next);
            next += 1;
        });
    }

    /// Number of operators in the plan.
    pub fn op_count(&self) -> usize {
        self.root.node_count()
    }

    /// All operators in pre-order.
    pub fn operators(&self) -> Vec<&PhysicalNode> {
        self.root.collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ClusterId, DayIndex, JobId};

    pub(crate) fn test_meta() -> JobMeta {
        JobMeta {
            id: JobId(1),
            cluster: ClusterId(0),
            template: None,
            name: "test_job".into(),
            normalized_inputs: vec!["events_{date}".into()],
            params: vec![1.0],
            day: DayIndex(0),
            recurring: false,
        }
    }

    fn small_plan() -> PhysicalPlan {
        let extract = PhysicalNode::new(PhysicalOpKind::Extract, "events", vec![]);
        let filter = PhysicalNode::new(PhysicalOpKind::Filter, "p>1", vec![extract]);
        let exch = PhysicalNode::new(PhysicalOpKind::Exchange, "user", vec![filter]);
        let agg = PhysicalNode::new(PhysicalOpKind::HashAggregate, "user", vec![exch]);
        let out = PhysicalNode::new(PhysicalOpKind::Output, "sink", vec![agg]);
        PhysicalPlan::new(test_meta(), out)
    }

    #[test]
    fn ids_are_assigned_preorder_and_unique() {
        let plan = small_plan();
        let ops = plan.operators();
        assert_eq!(ops.len(), 5);
        let ids: Vec<usize> = ops.iter().map(|o| o.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(ops[0].kind, PhysicalOpKind::Output);
        assert_eq!(ops[4].kind, PhysicalOpKind::Extract);
    }

    #[test]
    fn structural_helpers_work() {
        let plan = small_plan();
        assert_eq!(plan.op_count(), 5);
        assert_eq!(plan.root.depth(), 5);
        assert_eq!(plan.root.input_tables(), vec!["events".to_string()]);
        let freq = plan.root.logical_frequency();
        assert!(freq.contains(&("Aggregate".to_string(), 1)));
        assert!(freq.contains(&("Get".to_string(), 1)));
        assert!(plan.root.find(OpId(4)).is_some());
        assert!(plan.root.find(OpId(99)).is_none());
    }

    #[test]
    fn operator_kind_classification() {
        assert!(PhysicalOpKind::Exchange.is_partitioning());
        assert!(PhysicalOpKind::Extract.is_partitioning());
        assert!(!PhysicalOpKind::Filter.is_partitioning());
        assert!(PhysicalOpKind::Sort.is_blocking());
        assert!(!PhysicalOpKind::Project.is_blocking());
        assert_eq!(PhysicalOpKind::all().len(), 12);
        assert_eq!(PhysicalOpKind::MergeJoin.logical_name(), "Join");
    }

    #[test]
    fn base_cardinality_sums_extract_estimates() {
        let mut plan = small_plan();
        plan.root.visit_mut(&mut |n| {
            if n.kind == PhysicalOpKind::Extract {
                n.est.output_cardinality = 500.0;
            }
        });
        assert_eq!(plan.root.base_cardinality_est(), 500.0);
    }

    #[test]
    fn node_count_and_depth_are_cached_at_construction() {
        let plan = small_plan();
        assert_eq!(plan.root.node_count(), 5);
        assert_eq!(plan.root.depth(), 5);
        let leaf = PhysicalNode::new(PhysicalOpKind::Extract, "t", vec![]);
        assert_eq!(leaf.node_count(), 1);
        assert_eq!(leaf.depth(), 1);
    }

    #[test]
    fn shared_subtrees_are_copied_on_write() {
        // Two parents over one shared child: mutating through one parent must
        // not leak into the other (Arc::make_mut copy-on-write).
        let child = Arc::new(PhysicalNode::new(PhysicalOpKind::Extract, "shared", vec![]));
        let mut a = PhysicalNode::new_shared(PhysicalOpKind::Filter, "a", vec![Arc::clone(&child)]);
        let b = PhysicalNode::new_shared(PhysicalOpKind::Filter, "b", vec![Arc::clone(&child)]);
        a.visit_mut(&mut |n| n.partition_count = 99);
        assert_eq!(a.children[0].partition_count, 99);
        assert_eq!(b.children[0].partition_count, 1, "b's shared child mutated");
        assert_eq!(child.partition_count, 1);
    }

    #[test]
    fn memo_slots_fill_once_and_reset_on_clone() {
        // `compute` must be a pure function of the structural fields; the memo
        // serves it from the cache afterwards.
        let compute = |n: &PhysicalNode| n.label.len() as u64;
        let node = PhysicalNode::new(PhysicalOpKind::Filter, "x", vec![]);
        assert_eq!(node.memo_subgraph_signature(compute), 1);
        assert_eq!(node.memo_subgraph_signature(compute), 1);
        // A clone is what gets mutated (directly or via Arc::make_mut), so it
        // drops the memo and recomputes against its own (new) structure.
        let mut cloned = node.clone();
        cloned.label = "longer".into();
        assert_eq!(cloned.memo_subgraph_signature(compute), 6);
        assert_eq!(cloned.node_count(), node.node_count());
        assert_eq!(node.memo_subgraph_signature(compute), 1, "original intact");
    }

    #[test]
    #[should_panic(expected = "stale subgraph-signature memo")]
    #[cfg(debug_assertions)]
    fn debug_builds_catch_structural_mutation_after_signature_query() {
        let compute = |n: &PhysicalNode| n.label.len() as u64;
        let mut node = PhysicalNode::new(PhysicalOpKind::Filter, "x", vec![]);
        assert_eq!(node.memo_subgraph_signature(compute), 1);
        // Mutating a structural field in place after the first query is the
        // one forbidden pattern; the debug tripwire must catch it.
        node.label = "mutated".into();
        let _ = node.memo_subgraph_signature(compute);
    }
}
