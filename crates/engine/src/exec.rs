//! The execution simulator — the reproduction's stand-in for a SCOPE cluster.
//!
//! The paper trains on telemetry from real production runs; here a ground-truth
//! runtime model generates that telemetry.  The model is deliberately *richer* than
//! anything the default cost model assumes, for the same reasons production runtimes
//! are (Section 2.4):
//!
//! * per-operator work has both a parallel component (`work / partitions`) and a
//!   per-partition overhead component (`overhead × partitions`), so partition counts
//!   have a genuine optimum that resource-aware planning can find (Section 5.2),
//! * user-defined operators carry hidden per-row cost factors the default model cannot
//!   see,
//! * the latency of an operator depends on its *context* — running over a blocking
//!   child (sort, hash build) costs more than running pipelined over a filter
//!   (Section 3.1's motivation for subgraph models),
//! * every operator's latency is multiplied by log-normal "cloud variance" noise and
//!   occasional heavy-tailed outliers (machine/network failures),
//! * each cluster has its own hardware speed factor.
//!
//! The simulator works off the **actual** statistics stored in the plan, while every
//! cost model only sees the **estimated** ones — reproducing the estimation-error
//! structure the paper measures.

use std::collections::BTreeMap;

use cleo_common::rng::DetRng;

use crate::physical::{PhysicalNode, PhysicalOpKind, PhysicalPlan};
use crate::stage::{build_stage_graph, StageGraph};
use crate::types::{OpId, Seconds};

/// Configuration of the simulated cluster environment.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatorConfig {
    /// Log-space sigma of the per-operator cloud-variance noise.
    pub noise_sigma: f64,
    /// Probability that an operator hits a heavy-tailed outlier (stragglers, retries).
    pub outlier_probability: f64,
    /// Relative hardware speed per cluster (multiplies every latency).
    pub cluster_speed_factors: Vec<f64>,
    /// Log-space sigma of the hidden per-template "workload complexity" factor:
    /// string-heavy rows, compression ratios, skewed keys, user code — everything that
    /// makes two jobs of the same size run at very different speeds.  The factor is
    /// stable across instances of a template (so specialised learned models can absorb
    /// it) but invisible to any hand-written cost model, which is a large part of why
    /// the default model's correlation with runtimes is so poor (Section 2.4).
    pub template_complexity_sigma: f64,
    /// Base seed; each job derives its own stream from this and its job id.
    pub seed: u64,
}

impl Default for SimulatorConfig {
    fn default() -> Self {
        SimulatorConfig {
            noise_sigma: 0.12,
            outlier_probability: 0.01,
            cluster_speed_factors: vec![1.0, 1.15, 0.9, 1.25],
            template_complexity_sigma: 1.0,
            seed: 0x0005_C09E,
        }
    }
}

impl SimulatorConfig {
    /// A noise-free, complexity-free configuration (useful in tests and for isolating
    /// model error from environmental variance).
    pub fn noiseless(seed: u64) -> Self {
        SimulatorConfig {
            noise_sigma: 0.0,
            outlier_probability: 0.0,
            cluster_speed_factors: vec![1.0, 1.15, 0.9, 1.25],
            template_complexity_sigma: 0.0,
            seed,
        }
    }
}

/// Per-operator outcome of a simulated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatorRun {
    /// Operator id within the plan.
    pub op: OpId,
    /// Exclusive latency of the operator (seconds) — the learning target.
    pub exclusive_seconds: Seconds,
    /// Partition count the operator ran with.
    pub partition_count: usize,
}

/// Outcome of simulating one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRun {
    /// Per-operator exclusive latencies keyed by operator id.
    pub operator_runs: BTreeMap<OpId, OperatorRun>,
    /// End-to-end job latency (seconds): critical path over the stage DAG.
    pub job_latency: Seconds,
    /// Total processing time (container-seconds): Σ stage latency × partition count.
    pub total_cpu_seconds: Seconds,
    /// Number of containers allocated (max over concurrently runnable stages,
    /// approximated by the largest stage partition count).
    pub peak_containers: usize,
}

impl JobRun {
    /// Exclusive latency of one operator.
    pub fn exclusive(&self, op: OpId) -> Option<Seconds> {
        self.operator_runs.get(&op).map(|r| r.exclusive_seconds)
    }
}

/// The execution simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimulatorConfig,
}

/// Ground-truth per-row/byte cost constants (seconds).  These are "the cluster", not a
/// cost model: no component of the optimizer may read them.
mod truth {
    /// IO read rate, seconds per byte (≈100 MB/s per container).
    pub const READ_PER_BYTE: f64 = 1.0e-8;
    /// Output write rate, seconds per byte.
    pub const WRITE_PER_BYTE: f64 = 1.5e-8;
    /// Network transfer rate for exchanges, seconds per byte.
    pub const NET_PER_BYTE: f64 = 2.2e-8;
    /// Filter cost per input row.
    pub const FILTER_PER_ROW: f64 = 2.0e-7;
    /// Projection cost per input row.
    pub const PROJECT_PER_ROW: f64 = 1.4e-7;
    /// Hash-join build cost per build row.
    pub const HJ_BUILD_PER_ROW: f64 = 9.0e-7;
    /// Hash-join probe cost per probe row.
    pub const HJ_PROBE_PER_ROW: f64 = 3.5e-7;
    /// Merge-join cost per input row (both sides).
    pub const MJ_PER_ROW: f64 = 2.6e-7;
    /// Hash-aggregate cost per input row.
    pub const HASH_AGG_PER_ROW: f64 = 6.5e-7;
    /// Stream-aggregate cost per input row.
    pub const STREAM_AGG_PER_ROW: f64 = 2.2e-7;
    /// Local (partial) aggregate cost per input row.
    pub const LOCAL_AGG_PER_ROW: f64 = 3.0e-7;
    /// Sort cost per row per log2(rows-per-partition).
    pub const SORT_PER_ROW_LOG: f64 = 1.1e-7;
    /// UDF processor base cost per input row (multiplied by the hidden factor).
    pub const UDF_PER_ROW: f64 = 4.0e-7;
    /// Per-row cost of producing join/aggregate output.
    pub const OUT_PER_ROW: f64 = 1.5e-7;
    /// Per-partition connection/setup overhead of an exchange.
    pub const EXCHANGE_PER_PARTITION: f64 = 0.035;
    /// Fixed startup overhead of an exchange.
    pub const EXCHANGE_FIXED: f64 = 0.3;
    /// Fixed startup overhead of an extract.
    pub const EXTRACT_FIXED: f64 = 0.5;
    /// Fixed overhead of the output writer.
    pub const OUTPUT_FIXED: f64 = 0.2;
    /// Per-operator scheduling overhead multiplier on ln(partitions).
    pub const SCHED_PER_LOG_PARTITION: f64 = 0.05;
    /// Latency multiplier when the operator's input comes from a blocking child.
    pub const BLOCKING_CHILD_FACTOR: f64 = 1.22;
    /// Latency multiplier when the operator's input is pipelined from a streaming child.
    pub const STREAMING_CHILD_FACTOR: f64 = 0.97;
}

impl Simulator {
    /// Create a simulator with the given configuration.
    pub fn new(config: SimulatorConfig) -> Self {
        Simulator { config }
    }

    /// Create a simulator with the default production-like configuration.
    pub fn default_cluster() -> Self {
        Simulator::new(SimulatorConfig::default())
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimulatorConfig {
        &self.config
    }

    /// The hidden data-complexity factor of a job (see
    /// [`SimulatorConfig::template_complexity_sigma`]).  The factor is a property of
    /// the *upstream dataset* the job reads (string-heavy rows, compression, skew), so
    /// it is keyed on the job's primary normalised input: every instance of a
    /// recurring template — and every other job reading the same dataset — sees the
    /// same factor, which is what makes it learnable by the subgraph/input model
    /// families while remaining invisible to hand-written cost models.
    pub fn template_complexity_factor(&self, meta: &crate::physical::JobMeta) -> f64 {
        if self.config.template_complexity_sigma <= 0.0 {
            return 1.0;
        }
        let key = meta
            .normalized_inputs
            .first()
            .map(|s| cleo_common::hash::hash_str(s))
            .unwrap_or_else(|| cleo_common::hash::hash_str(&meta.name));
        let mut rng = DetRng::new(0xC0_4F1E ^ key);
        rng.normal(0.0, self.config.template_complexity_sigma).exp()
    }

    /// Simulate a job and return per-operator and job-level outcomes.
    pub fn run(&self, plan: &PhysicalPlan) -> JobRun {
        let cluster_factor = self
            .config
            .cluster_speed_factors
            .get(plan.meta.cluster.0 as usize)
            .copied()
            .unwrap_or(1.0)
            * self.template_complexity_factor(&plan.meta);
        let mut rng = DetRng::new(self.config.seed).derive(plan.meta.id.0);

        let mut operator_runs = BTreeMap::new();
        self.simulate_node(&plan.root, cluster_factor, &mut rng, &mut operator_runs);

        let stage_graph = build_stage_graph(plan);
        let (job_latency, total_cpu_seconds, peak_containers) =
            aggregate_stages(&stage_graph, &operator_runs);

        JobRun {
            operator_runs,
            job_latency,
            total_cpu_seconds,
            peak_containers,
        }
    }

    /// Ground-truth exclusive latency of a single operator, *without* noise.  Exposed
    /// for tests and for the oracle used when validating partition exploration.
    pub fn ground_truth_exclusive(&self, node: &PhysicalNode, cluster_factor: f64) -> Seconds {
        let p = node.partition_count.max(1) as f64;
        let act = &node.act;
        let rows_in = act.input_cardinality.max(1.0);
        let rows_out = act.output_cardinality.max(1.0);
        let bytes_in = act.input_bytes().max(1.0);
        let bytes_out = act.output_bytes().max(1.0);

        let work = match node.kind {
            PhysicalOpKind::Extract => bytes_out * truth::READ_PER_BYTE,
            PhysicalOpKind::Filter => rows_in * truth::FILTER_PER_ROW,
            PhysicalOpKind::Project => rows_in * truth::PROJECT_PER_ROW,
            PhysicalOpKind::HashJoin => {
                let (build, probe) = build_probe_rows(node);
                build * truth::HJ_BUILD_PER_ROW
                    + probe * truth::HJ_PROBE_PER_ROW
                    + rows_out * truth::OUT_PER_ROW
            }
            PhysicalOpKind::MergeJoin => {
                // Merge join over unsorted inputs would have to sort; the optimizer only
                // produces it over sorted children, but guard with a penalty anyway.
                let sorted = node.children.iter().all(|c| !c.sorted_on.is_empty());
                let penalty = if sorted { 1.0 } else { 3.0 };
                penalty * rows_in * truth::MJ_PER_ROW + rows_out * truth::OUT_PER_ROW
            }
            PhysicalOpKind::HashAggregate => {
                rows_in * truth::HASH_AGG_PER_ROW + rows_out * truth::OUT_PER_ROW
            }
            PhysicalOpKind::StreamAggregate => {
                rows_in * truth::STREAM_AGG_PER_ROW + rows_out * truth::OUT_PER_ROW
            }
            PhysicalOpKind::LocalAggregate => rows_in * truth::LOCAL_AGG_PER_ROW,
            PhysicalOpKind::Sort => {
                let per_part = (rows_in / p).max(2.0);
                rows_in * per_part.log2() * truth::SORT_PER_ROW_LOG
            }
            PhysicalOpKind::Exchange => bytes_in * truth::NET_PER_BYTE,
            PhysicalOpKind::Process => {
                rows_in * truth::UDF_PER_ROW * node.udf_cost_factor + rows_out * truth::OUT_PER_ROW
            }
            PhysicalOpKind::Output => bytes_out * truth::WRITE_PER_BYTE,
        };

        // Parallel fraction of the work, plus per-partition overheads.
        let mut latency = work / p;
        latency += truth::SCHED_PER_LOG_PARTITION * (p + 1.0).ln();
        latency += match node.kind {
            PhysicalOpKind::Exchange => truth::EXCHANGE_FIXED + truth::EXCHANGE_PER_PARTITION * p,
            PhysicalOpKind::Extract => truth::EXTRACT_FIXED,
            PhysicalOpKind::Output => truth::OUTPUT_FIXED,
            _ => 0.0,
        };

        // Context: blocked vs pipelined input (ignored by the default cost model, which
        // is part of why per-operator costing is inaccurate).
        if let Some(first_child) = node.children.first() {
            latency *= if first_child.kind.is_blocking() {
                truth::BLOCKING_CHILD_FACTOR
            } else {
                truth::STREAMING_CHILD_FACTOR
            };
        }

        latency * cluster_factor
    }

    fn simulate_node(
        &self,
        node: &PhysicalNode,
        cluster_factor: f64,
        rng: &mut DetRng,
        out: &mut BTreeMap<OpId, OperatorRun>,
    ) {
        for child in &node.children {
            self.simulate_node(child, cluster_factor, rng, out);
        }
        let mut latency = self.ground_truth_exclusive(node, cluster_factor);
        if self.config.noise_sigma > 0.0 {
            latency *= rng.lognormal_noise(self.config.noise_sigma);
        }
        if self.config.outlier_probability > 0.0 && rng.chance(self.config.outlier_probability) {
            latency *= rng.uniform(3.0, 8.0);
        }
        out.insert(
            node.id,
            OperatorRun {
                op: node.id,
                exclusive_seconds: latency,
                partition_count: node.partition_count,
            },
        );
    }
}

/// Build/probe row counts of a hash join: build on the smaller actual input.
fn build_probe_rows(node: &PhysicalNode) -> (f64, f64) {
    if node.children.len() < 2 {
        let rows = node.act.input_cardinality.max(1.0);
        return (rows * 0.5, rows * 0.5);
    }
    let a = node.children[0].act.output_cardinality.max(1.0);
    let b = node.children[1].act.output_cardinality.max(1.0);
    (a.min(b), a.max(b))
}

/// Aggregate per-operator latencies into stage latencies, the job critical path, and
/// the total processing time.
fn aggregate_stages(
    stages: &StageGraph,
    runs: &BTreeMap<OpId, OperatorRun>,
) -> (Seconds, Seconds, usize) {
    if stages.is_empty() {
        return (0.0, 0.0, 0);
    }
    let stage_latency: Vec<Seconds> = stages
        .stages
        .iter()
        .map(|s| {
            s.op_ids
                .iter()
                .filter_map(|id| runs.get(id))
                .map(|r| r.exclusive_seconds)
                .sum()
        })
        .collect();

    // Critical path over the stage DAG (children must finish before a stage starts).
    let mut finish = vec![0.0f64; stages.stages.len()];
    for (i, s) in stages.stages.iter().enumerate() {
        let start = s
            .child_stages
            .iter()
            .map(|&c| finish[c])
            .fold(0.0, f64::max);
        finish[i] = start + stage_latency[i];
    }
    let job_latency = finish.iter().fold(0.0f64, |a, &b| a.max(b));

    let total_cpu: Seconds = stages
        .stages
        .iter()
        .enumerate()
        .map(|(i, s)| stage_latency[i] * s.partition_count as f64)
        .sum();

    let peak = stages
        .stages
        .iter()
        .map(|s| s.partition_count)
        .max()
        .unwrap_or(0);

    (job_latency, total_cpu, peak)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::{JobMeta, PhysicalNode, PhysicalOpKind, PhysicalPlan};
    use crate::types::{ClusterId, DayIndex, JobId, OpStats};

    fn meta(job: u64, cluster: u8) -> JobMeta {
        JobMeta {
            id: JobId(job),
            cluster: ClusterId(cluster),
            template: None,
            name: "sim_test".into(),
            normalized_inputs: vec![],
            params: vec![],
            day: DayIndex(0),
            recurring: true,
        }
    }

    fn stats(rows_in: f64, rows_out: f64, width: f64) -> OpStats {
        OpStats {
            input_cardinality: rows_in,
            base_cardinality: rows_in,
            output_cardinality: rows_out,
            avg_row_bytes: width,
        }
    }

    fn pipeline_plan(partitions: usize, rows: f64) -> PhysicalPlan {
        let mut extract = PhysicalNode::new(PhysicalOpKind::Extract, "t", vec![]);
        extract.act = stats(rows, rows, 50.0);
        extract.est = extract.act;
        extract.partition_count = partitions;
        let mut filter = PhysicalNode::new(PhysicalOpKind::Filter, "p", vec![extract]);
        filter.act = stats(rows, rows * 0.1, 50.0);
        filter.est = filter.act;
        filter.partition_count = partitions;
        let mut out = PhysicalNode::new(PhysicalOpKind::Output, "sink", vec![filter]);
        out.act = stats(rows * 0.1, rows * 0.1, 50.0);
        out.est = out.act;
        out.partition_count = partitions;
        PhysicalPlan::new(meta(1, 0), out)
    }

    #[test]
    fn run_produces_latency_for_every_operator() {
        let plan = pipeline_plan(16, 1e7);
        let sim = Simulator::default_cluster();
        let run = sim.run(&plan);
        assert_eq!(run.operator_runs.len(), plan.op_count());
        assert!(run
            .operator_runs
            .values()
            .all(|r| r.exclusive_seconds > 0.0));
        assert!(run.job_latency > 0.0);
        assert!(run.total_cpu_seconds >= run.job_latency);
        assert_eq!(run.peak_containers, 16);
    }

    #[test]
    fn deterministic_per_job_seed() {
        let plan = pipeline_plan(8, 1e6);
        let sim = Simulator::default_cluster();
        let a = sim.run(&plan);
        let b = sim.run(&plan);
        assert_eq!(a, b);
        // A different job id gets a different noise stream.
        let mut plan2 = plan.clone();
        plan2.meta.id = JobId(99);
        let c = sim.run(&plan2);
        assert_ne!(a.job_latency, c.job_latency);
    }

    #[test]
    fn more_rows_means_more_time() {
        let sim = Simulator::new(SimulatorConfig::noiseless(1));
        let small = sim.run(&pipeline_plan(16, 1e6));
        let large = sim.run(&pipeline_plan(16, 1e8));
        assert!(large.job_latency > small.job_latency * 5.0);
    }

    #[test]
    fn partition_count_has_an_optimum_for_exchange_stages() {
        // Exchange latency = net_bytes/P + per-partition overhead*P: tiny and huge P
        // should both lose to a middle value.
        let sim = Simulator::new(SimulatorConfig::noiseless(3));
        let latency_for = |p: usize| {
            let mut extract = PhysicalNode::new(PhysicalOpKind::Extract, "t", vec![]);
            extract.act = stats(5e7, 5e7, 100.0);
            extract.est = extract.act;
            extract.partition_count = 100;
            let mut exch = PhysicalNode::new(PhysicalOpKind::Exchange, "k", vec![extract]);
            exch.act = stats(5e7, 5e7, 100.0);
            exch.est = exch.act;
            exch.partition_count = p;
            let mut agg = PhysicalNode::new(PhysicalOpKind::HashAggregate, "k", vec![exch]);
            agg.act = stats(5e7, 1e5, 60.0);
            agg.est = agg.act;
            agg.partition_count = p;
            let mut out = PhysicalNode::new(PhysicalOpKind::Output, "sink", vec![agg]);
            out.act = stats(1e5, 1e5, 60.0);
            out.est = out.act;
            out.partition_count = p;
            let plan = PhysicalPlan::new(meta(7, 0), out);
            sim.run(&plan).job_latency
        };
        let tiny = latency_for(1);
        let mid = latency_for(64);
        let huge = latency_for(2500);
        assert!(mid < tiny, "mid {mid} vs tiny {tiny}");
        assert!(mid < huge, "mid {mid} vs huge {huge}");
    }

    #[test]
    fn udf_cost_factor_changes_runtime_but_not_estimates() {
        let sim = Simulator::new(SimulatorConfig::noiseless(5));
        let build = |factor: f64| {
            let mut extract = PhysicalNode::new(PhysicalOpKind::Extract, "t", vec![]);
            extract.act = stats(1e7, 1e7, 40.0);
            extract.est = extract.act;
            extract.partition_count = 32;
            let mut proc = PhysicalNode::new(PhysicalOpKind::Process, "udf", vec![extract]);
            proc.act = stats(1e7, 5e6, 30.0);
            proc.est = proc.act;
            proc.partition_count = 32;
            proc.udf_cost_factor = factor;
            let mut out = PhysicalNode::new(PhysicalOpKind::Output, "sink", vec![proc]);
            out.act = stats(5e6, 5e6, 30.0);
            out.est = out.act;
            out.partition_count = 32;
            PhysicalPlan::new(meta(8, 0), out)
        };
        let cheap = sim.run(&build(1.0));
        let expensive = sim.run(&build(20.0));
        assert!(expensive.job_latency > cheap.job_latency * 2.0);
    }

    #[test]
    fn cluster_speed_factors_apply() {
        let sim = Simulator::new(SimulatorConfig::noiseless(9));
        let mut plan_fast = pipeline_plan(16, 1e7);
        plan_fast.meta.cluster = ClusterId(2); // factor 0.9
        let mut plan_slow = pipeline_plan(16, 1e7);
        plan_slow.meta.cluster = ClusterId(3); // factor 1.25
        let fast = sim.run(&plan_fast);
        let slow = sim.run(&plan_slow);
        assert!(slow.job_latency > fast.job_latency);
    }

    #[test]
    fn blocking_child_costs_more_than_streaming_child() {
        let sim = Simulator::new(SimulatorConfig::noiseless(11));
        let build = |child_kind: PhysicalOpKind| {
            let mut extract = PhysicalNode::new(PhysicalOpKind::Extract, "t", vec![]);
            extract.act = stats(1e7, 1e7, 40.0);
            extract.partition_count = 32;
            let mut child = PhysicalNode::new(child_kind, "c", vec![extract]);
            child.act = stats(1e7, 1e7, 40.0);
            child.partition_count = 32;
            let mut agg = PhysicalNode::new(PhysicalOpKind::HashAggregate, "k", vec![child]);
            agg.act = stats(1e7, 1e4, 40.0);
            agg.partition_count = 32;
            agg
        };
        let cf = 1.0;
        let over_sort = sim.ground_truth_exclusive(&build(PhysicalOpKind::Sort), cf);
        let over_filter = sim.ground_truth_exclusive(&build(PhysicalOpKind::Filter), cf);
        assert!(over_sort > over_filter * 1.1);
    }
}
