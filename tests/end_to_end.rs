//! Cross-crate integration tests: the full Cleo loop over the public `cleo` facade.

use cleo::core::{pipeline, LearnedCostModel, ModelFamily, TrainerConfig};
use cleo::engine::exec::{Simulator, SimulatorConfig};
use cleo::engine::workload::generator::{generate_cluster_workload, ClusterConfig};
use cleo::engine::workload::tpch::{all_queries, tpch_job, TpchParams};
use cleo::engine::workload::JobSpec;
use cleo::engine::{ClusterId, DayIndex};
use cleo::optimizer::{CostModel, HeuristicCostModel, Optimizer, OptimizerConfig};

/// The headline claim, end to end: learned cost models are far more accurate and far
/// better correlated with actual runtimes than the default cost model, at full
/// workload coverage.
#[test]
fn learned_models_outperform_default_cost_model_end_to_end() {
    let workload = generate_cluster_workload(&ClusterConfig::small(ClusterId(1)), 3);
    let simulator = Simulator::new(SimulatorConfig::default());
    let default_model = HeuristicCostModel::default_model();
    let jobs: Vec<&JobSpec> = workload.jobs.iter().collect();
    let telemetry = pipeline::run_jobs(
        &jobs,
        &default_model,
        OptimizerConfig::default(),
        &simulator,
    )
    .unwrap();

    let train = telemetry.slice_days(DayIndex(0), DayIndex(1));
    let test = telemetry.slice_days(DayIndex(2), DayIndex(2));
    let predictor = pipeline::train_predictor(&train, TrainerConfig::default()).unwrap();

    let default_eval = pipeline::evaluate_cost_model(&default_model, &test);
    let evals = pipeline::evaluate_predictor(&predictor, &test);
    let combined = evals.iter().find(|e| e.name == "Combined").unwrap();

    assert!(
        combined.correlation > 0.7,
        "combined corr {}",
        combined.correlation
    );
    assert!(
        combined.correlation > default_eval.correlation,
        "combined {} vs default {}",
        combined.correlation,
        default_eval.correlation
    );
    assert!(
        combined.median_error_pct * 1.5 < default_eval.median_error_pct,
        "combined {}% vs default {}%",
        combined.median_error_pct,
        default_eval.median_error_pct
    );
    assert!((combined.coverage - 1.0).abs() < 1e-9);

    // Accuracy/coverage trade-off across the individual families (Table 5's shape).
    let by_name = |n: &str| evals.iter().find(|e| e.name == n).unwrap();
    let subgraph = by_name(ModelFamily::OpSubgraph.name());
    let operator = by_name(ModelFamily::Operator.name());
    assert!(subgraph.coverage < operator.coverage);
    assert!(subgraph.median_error_pct <= operator.median_error_pct + 5.0);
}

/// Resource-aware planning with learned models produces complete, stage-consistent
/// plans and changes partition counts relative to the default heuristics.
#[test]
fn resource_aware_replanning_produces_valid_plans() {
    let workload = generate_cluster_workload(&ClusterConfig::small(ClusterId(2)), 2);
    let simulator = Simulator::new(SimulatorConfig::default());
    let default_model = HeuristicCostModel::default_model();
    let jobs: Vec<&JobSpec> = workload.jobs.iter().collect();
    let telemetry = pipeline::run_jobs(
        &jobs,
        &default_model,
        OptimizerConfig::default(),
        &simulator,
    )
    .unwrap();
    let predictor = pipeline::train_predictor(&telemetry, TrainerConfig::default()).unwrap();
    let learned = LearnedCostModel::new(predictor);

    let optimizer = Optimizer::new(&learned, OptimizerConfig::resource_aware());
    let mut changed_partitions = 0usize;
    for job in workload.jobs.iter().take(20) {
        let optimized = optimizer.optimize(job).unwrap();
        let baseline = Optimizer::new(&default_model, OptimizerConfig::default())
            .optimize(job)
            .unwrap();
        // Every stage has a single partition count.
        let stages = cleo::engine::stage::build_stage_graph(&optimized.plan);
        for stage in &stages.stages {
            let counts: std::collections::HashSet<usize> = stage
                .op_ids
                .iter()
                .filter_map(|id| optimized.plan.root.find(*id))
                .map(|o| o.partition_count)
                .collect();
            assert_eq!(counts.len(), 1);
        }
        // Plans remain executable.
        let run = simulator.run(&optimized.plan);
        assert!(run.job_latency > 0.0);
        if optimized
            .plan
            .operators()
            .iter()
            .zip(baseline.plan.operators().iter())
            .any(|(a, b)| a.partition_count != b.partition_count)
        {
            changed_partitions += 1;
        }
    }
    assert!(
        changed_partitions > 0,
        "resource-aware planning never changed a partition count"
    );
}

/// The TPC-H workload runs end to end through optimizer, simulator, and training.
#[test]
fn tpch_end_to_end_round_trip() {
    let simulator = Simulator::new(SimulatorConfig::default());
    let default_model = HeuristicCostModel::default_model();
    let mut rng = cleo::common::rng::DetRng::new(9);
    let jobs: Vec<JobSpec> = all_queries()
        .into_iter()
        .flat_map(|q| {
            (0..2)
                .map(|run| tpch_job(q, run, 1.0, &TpchParams::draw(&mut rng), ClusterId(0)))
                .collect::<Vec<_>>()
        })
        .collect();
    let refs: Vec<&JobSpec> = jobs.iter().collect();
    let log = pipeline::run_jobs(
        &refs,
        &default_model,
        OptimizerConfig::default(),
        &simulator,
    )
    .unwrap();
    assert_eq!(log.len(), 44);
    let predictor = pipeline::train_predictor(&log, TrainerConfig::default()).unwrap();
    assert!(predictor.model_count() > 10);

    // The learned model can cost every operator of every TPC-H plan.
    let learned = LearnedCostModel::new(predictor);
    for job in log.jobs() {
        for op in job.plan.operators() {
            let cost = learned.exclusive_cost(op, op.partition_count, &job.plan.meta);
            assert!(cost.is_finite() && cost >= 0.0);
        }
    }
}

/// Restart-restore: a registry persisted with `save_snapshot` comes back from
/// disk serving the same version at bit-identical costs, with provenance
/// intact and version numbering continuing where it left off — no retraining.
#[test]
fn a_restarted_server_serves_the_persisted_model_bit_identically() {
    use cleo::core::{HoldoutMetrics, ModelRegistry, SnapshotLineage};

    let workload = generate_cluster_workload(&ClusterConfig::small(ClusterId(4)), 2);
    let simulator = Simulator::new(SimulatorConfig::default());
    let default_model = HeuristicCostModel::default_model();
    let jobs: Vec<&JobSpec> = workload.jobs.iter().collect();
    let telemetry = pipeline::run_jobs(
        &jobs,
        &default_model,
        OptimizerConfig::default(),
        &simulator,
    )
    .unwrap();

    // Publish v1 from day 0, then the incumbent v2 from the full window.
    let registry = ModelRegistry::new();
    let day0 = telemetry.slice_days(DayIndex(0), DayIndex(0));
    registry.publish(
        pipeline::train_predictor(&day0, TrainerConfig::default()).unwrap(),
        1,
        HoldoutMetrics {
            correlation: 0.8,
            median_error_pct: 20.0,
            sample_count: day0.len(),
        },
    );
    registry.publish(
        pipeline::train_predictor(&telemetry, TrainerConfig::default()).unwrap(),
        2,
        HoldoutMetrics {
            correlation: 0.9,
            median_error_pct: 12.0,
            sample_count: telemetry.len(),
        },
    );
    assert_eq!(registry.current_version(), 2);

    // The pre-restart serving baseline: resource-aware plans costed by the
    // incumbent snapshot.
    let serve = |registry: &ModelRegistry| -> Vec<(u64, u64)> {
        let snapshot = registry.current().unwrap();
        let optimizer = Optimizer::new(
            snapshot.cost_model().as_ref(),
            OptimizerConfig::resource_aware(),
        );
        workload
            .jobs
            .iter()
            .take(25)
            .map(|job| {
                let optimized = optimizer.optimize(job).unwrap();
                (optimized.plan.meta.id.0, optimized.estimated_cost.to_bits())
            })
            .collect()
    };
    let before = serve(&registry);

    let path = std::env::temp_dir().join(format!("cleo_e2e_restart_{}.cms", std::process::id()));
    registry.save_snapshot(&path).unwrap();
    drop(registry); // the "crash": every in-memory model is gone

    // Restart: load the snapshot and serve v2 immediately.
    let restored = ModelRegistry::load_snapshot(&path).unwrap();
    assert_eq!(restored.current_version(), 2);
    let current = restored.current().unwrap();
    assert_eq!(current.version(), 2);
    assert_eq!(current.epoch(), 2);
    assert_eq!(current.lineage(), SnapshotLineage::FullEpoch);
    assert_eq!(current.holdout().median_error_pct, 12.0);
    assert_eq!(
        serve(&restored),
        before,
        "served costs must be bit-identical across the restart"
    );

    // Version numbering continues where it left off.
    let v3 = restored.publish(
        pipeline::train_predictor(&telemetry, TrainerConfig::default()).unwrap(),
        3,
        HoldoutMetrics {
            correlation: 0.9,
            median_error_pct: 12.0,
            sample_count: telemetry.len(),
        },
    );
    assert_eq!(v3.version(), 3);
    let _ = std::fs::remove_file(path);
}

/// Determinism: the same seeds produce identical workloads, plans, and runtimes.
#[test]
fn whole_pipeline_is_deterministic() {
    let build = || {
        let workload = generate_cluster_workload(&ClusterConfig::small(ClusterId(3)), 1);
        let simulator = Simulator::new(SimulatorConfig::default());
        let model = HeuristicCostModel::default_model();
        let jobs: Vec<&JobSpec> = workload.jobs.iter().take(15).collect();
        let log =
            pipeline::run_jobs(&jobs, &model, OptimizerConfig::default(), &simulator).unwrap();
        (
            log.total_latency(),
            log.total_cpu_seconds(),
            log.operator_sample_count(),
        )
    };
    assert_eq!(build(), build());
}
