//! Recurring-pipeline scenario: an hourly fact-extraction job (the paper's Figure 2
//! motivation) whose input grows over time, with a user-defined extractor whose cost
//! the default cost model cannot see.
//!
//! The example builds the job by hand with the public plan-construction API (rather
//! than the workload generator), trains Cleo on two weeks of its history, and shows
//! how the learned models price the UDF correctly while the default model does not.
//!
//! Run with: `cargo run --release --example recurring_pipeline`

use cleo::core::{pipeline, TrainerConfig};
use cleo::engine::catalog::{Catalog, ColumnDef, TableDef};
use cleo::engine::exec::{Simulator, SimulatorConfig};
use cleo::engine::logical::LogicalNode;
use cleo::engine::physical::JobMeta;
use cleo::engine::workload::JobSpec;
use cleo::engine::{ClusterId, DayIndex, JobId, TemplateId};
use cleo::optimizer::{HeuristicCostModel, OptimizerConfig};

/// Build one instance of the hourly clickstream job: scan → filter → UDF extractor →
/// join with a dimension table → aggregate → output.
fn clickstream_job(instance: u64, input_rows: f64) -> JobSpec {
    let mut catalog = Catalog::new();
    catalog.add_table(TableDef::new(
        "clickstream",
        vec![
            ColumnDef::new("user_id", 8.0, 0.08),
            ColumnDef::new("url", 80.0, 0.4),
            ColumnDef::new("ts", 8.0, 0.95),
            ColumnDef::new("payload", 160.0, 0.99),
        ],
        input_rows,
        ((input_rows / 4e6).ceil() as usize).clamp(8, 500),
    ));
    catalog.add_table(TableDef::new(
        "markets",
        vec![
            ColumnDef::new("market_id", 8.0, 1.0),
            ColumnDef::new("region", 16.0, 0.02),
        ],
        50_000.0,
        2,
    ));

    // Estimated selectivities come from stale statistics; the actual ones are lower.
    let plan = LogicalNode::get("clickstream")
        .filter("url LIKE '%search%'", 0.30, 0.11)
        .process("ExtractFacts", 0.9, 0.65, 18.0) // expensive UDF, invisible to the default model
        .join(
            LogicalNode::get("markets"),
            vec!["market_id".into()],
            1.0,
            0.8,
        )
        .aggregate(vec!["region".into(), "hour".into()], 0.001, 0.0004)
        .output("fact_store");

    JobSpec {
        meta: JobMeta {
            id: JobId(5000 + instance),
            cluster: ClusterId(0),
            template: Some(TemplateId(77)),
            name: format!("hourly_fact_extraction_{instance}"),
            normalized_inputs: vec!["clickstream_{date}".into(), "markets".into()],
            params: vec![(instance % 24) as f64 / 24.0, 0.5],
            day: DayIndex((instance / 24) as u32),
            recurring: true,
        },
        plan,
        catalog,
    }
}

fn main() {
    // 14 days × 24 hourly instances, with the input drifting between ~70 TB-scale
    // row counts like the paper's Figure 2 (range ≈ 1.7×).
    let jobs: Vec<JobSpec> = (0..14 * 24)
        .map(|i| {
            let day = (i / 24) as f64;
            let drift = 1.0 + 0.03 * day + 0.25 * ((i % 24) as f64 / 24.0);
            clickstream_job(i as u64, 8e8 * drift)
        })
        .collect();
    let job_refs: Vec<&JobSpec> = jobs.iter().collect();

    let simulator = Simulator::new(SimulatorConfig::default());
    let default_model = HeuristicCostModel::default_model();
    let telemetry = pipeline::run_jobs(
        &job_refs,
        &default_model,
        OptimizerConfig::default(),
        &simulator,
    )
    .expect("execution");
    println!(
        "executed {} instances; latency range {:.0}s – {:.0}s",
        telemetry.len(),
        telemetry
            .jobs()
            .iter()
            .map(|j| j.run.job_latency)
            .fold(f64::INFINITY, f64::min),
        telemetry
            .jobs()
            .iter()
            .map(|j| j.run.job_latency)
            .fold(0.0f64, f64::max),
    );

    // Train on the first 10 days, evaluate on the rest.
    let train = telemetry.slice_days(DayIndex(0), DayIndex(9));
    let test = telemetry.slice_days(DayIndex(10), DayIndex(13));
    let predictor = pipeline::train_predictor(&train, TrainerConfig::default()).expect("train");

    let default_eval = pipeline::evaluate_cost_model(&default_model, &test);
    println!(
        "\ndefault cost model : correlation {:.2}, median error {:.0}%",
        default_eval.correlation, default_eval.median_error_pct
    );
    for eval in pipeline::evaluate_predictor(&predictor, &test) {
        println!(
            "{:<18}: correlation {:.2}, median error {:>5.1}%, coverage {:>4.0}%",
            eval.name,
            eval.correlation,
            eval.median_error_pct,
            eval.coverage * 100.0
        );
    }
    println!(
        "\nthe UDF ('ExtractFacts') dominates this pipeline's cost; only the learned models\n\
         price it correctly because they key the operator on its recurring subgraph template"
    );
}
