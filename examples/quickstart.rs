//! Quickstart: the full Cleo loop on a small synthetic cluster.
//!
//! 1. Generate a recurring/ad-hoc workload for one cluster.
//! 2. Optimize and "execute" it with the default cost model (collecting telemetry).
//! 3. Train Cleo's learned cost models from the telemetry.
//! 4. Compare prediction quality, then re-optimize with the learned models and
//!    resource-aware planning and compare runtimes.
//!
//! Run with: `cargo run --release --example quickstart`

use cleo::core::{pipeline, LearnedCostModel, TrainerConfig};
use cleo::engine::exec::{Simulator, SimulatorConfig};
use cleo::engine::workload::generator::{generate_cluster_workload, ClusterConfig};
use cleo::engine::{ClusterId, DayIndex};
use cleo::optimizer::{HeuristicCostModel, OptimizerConfig};

fn main() {
    // 1. A small synthetic cluster: recurring templates + ad-hoc jobs over 3 days.
    let workload = generate_cluster_workload(&ClusterConfig::small(ClusterId(0)), 3);
    println!(
        "generated {} jobs from {} recurring templates",
        workload.jobs.len(),
        workload.templates.len()
    );

    // 2. Execute everything with the default (hand-written) cost model.
    let simulator = Simulator::new(SimulatorConfig::default());
    let default_model = HeuristicCostModel::default_model();
    let jobs: Vec<_> = workload.jobs.iter().collect();
    let telemetry = pipeline::run_jobs(
        &jobs,
        &default_model,
        OptimizerConfig::default(),
        &simulator,
    )
    .expect("execution");
    let train_log = telemetry.slice_days(DayIndex(0), DayIndex(1));
    let test_log = telemetry.slice_days(DayIndex(2), DayIndex(2));

    // 3. Train the learned cost models on days 0-1.
    let predictor = pipeline::train_predictor(&train_log, TrainerConfig::default()).expect("train");
    println!("trained {} specialised models", predictor.model_count());

    // 4a. Prediction quality on the held-out day.
    let default_eval = pipeline::evaluate_cost_model(&default_model, &test_log);
    println!(
        "default cost model : correlation {:.2}, median error {:.0}%",
        default_eval.correlation, default_eval.median_error_pct
    );
    for eval in pipeline::evaluate_predictor(&predictor, &test_log) {
        println!(
            "{:<18}: correlation {:.2}, median error {:>5.1}%, coverage {:>4.0}%",
            eval.name,
            eval.correlation,
            eval.median_error_pct,
            eval.coverage * 100.0
        );
    }

    // 4b. Re-optimize the test day with the learned models + resource-aware planning.
    let day2_jobs: Vec<_> = workload
        .jobs
        .iter()
        .filter(|j| j.meta.day == DayIndex(2))
        .collect();
    let baseline = pipeline::run_jobs(
        &day2_jobs,
        &default_model,
        OptimizerConfig::default(),
        &simulator,
    )
    .expect("baseline");
    let learned = LearnedCostModel::new(predictor);
    let improved = pipeline::run_jobs(
        &day2_jobs,
        &learned,
        OptimizerConfig::resource_aware(),
        &simulator,
    )
    .expect("learned run");
    let comparisons = pipeline::compare_runs(&baseline, &improved);
    let changed = comparisons.iter().filter(|c| c.plan_changed).count();
    let better = comparisons
        .iter()
        .filter(|c| c.plan_changed && c.latency_improvement_pct() > 0.0)
        .count();
    println!(
        "\nplans changed for {changed}/{} jobs; {better} of them improved latency",
        comparisons.len()
    );
    println!(
        "total processing time: {:.0} container-seconds (default) vs {:.0} (CLEO)",
        baseline.total_cpu_seconds(),
        improved.total_cpu_seconds()
    );
}
