//! TPC-H scenario (Section 6.6.2): train Cleo on parameter-varied runs of the 22
//! TPC-H queries, then re-optimize them with the learned cost models and
//! resource-aware planning and report the per-query latency / processing-time change.
//!
//! Run with: `cargo run --release --example tpch_optimizer`

use cleo::core::{pipeline, LearnedCostModel, TrainerConfig};
use cleo::engine::exec::{Simulator, SimulatorConfig};
use cleo::engine::workload::tpch::{all_queries, tpch_job, TpchParams};
use cleo::engine::workload::JobSpec;
use cleo::engine::ClusterId;
use cleo::optimizer::{HeuristicCostModel, OptimizerConfig};

fn main() {
    let scale_factor = 10.0;
    let simulator = Simulator::new(SimulatorConfig::default());
    let default_model = HeuristicCostModel::default_model();

    // Training: every query several times with random parameters (the paper runs each
    // query 10 times at SF1000; we use 6 runs at a smaller scale factor).
    let mut rng = cleo::common::rng::DetRng::new(0xE7C);
    let training_jobs: Vec<JobSpec> = all_queries()
        .into_iter()
        .flat_map(|q| {
            (0..6)
                .map(|run| {
                    tpch_job(
                        q,
                        run,
                        scale_factor,
                        &TpchParams::draw(&mut rng),
                        ClusterId(0),
                    )
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let training_refs: Vec<&JobSpec> = training_jobs.iter().collect();
    let train_log = pipeline::run_jobs(
        &training_refs,
        &default_model,
        OptimizerConfig::default(),
        &simulator,
    )
    .expect("training runs");
    let predictor = pipeline::train_predictor(&train_log, TrainerConfig::default()).expect("train");
    println!(
        "trained {} models from {} TPC-H runs",
        predictor.model_count(),
        train_log.len()
    );

    // Evaluation: reference parameters, default plans vs learned + resource-aware plans.
    let eval_jobs: Vec<JobSpec> = all_queries()
        .into_iter()
        .map(|q| tpch_job(q, 100, scale_factor, &TpchParams::reference(), ClusterId(0)))
        .collect();
    let eval_refs: Vec<&JobSpec> = eval_jobs.iter().collect();
    let baseline = pipeline::run_jobs(
        &eval_refs,
        &default_model,
        OptimizerConfig::default(),
        &simulator,
    )
    .expect("baseline");
    let learned = LearnedCostModel::new(predictor);
    let improved = pipeline::run_jobs(
        &eval_refs,
        &learned,
        OptimizerConfig::resource_aware(),
        &simulator,
    )
    .expect("learned plans");

    println!("\nquery  plan-changed  latency-improvement  processing-time-improvement");
    for (q, c) in all_queries()
        .iter()
        .zip(pipeline::compare_runs(&baseline, &improved))
    {
        println!(
            "Q{:<5} {:<13} {:>8.1}%            {:>8.1}%",
            q,
            if c.plan_changed { "yes" } else { "no" },
            c.latency_improvement_pct(),
            c.cpu_improvement_pct()
        );
    }
    println!(
        "\ncumulative latency: {:.0}s (default) vs {:.0}s (CLEO); \
         total processing time: {:.0} vs {:.0} container-seconds",
        baseline.total_latency(),
        improved.total_latency(),
        baseline.total_cpu_seconds(),
        improved.total_cpu_seconds()
    );
}
