//! Resource-aware planning scenario (Sections 5.2–5.3): show how partition counts are
//! chosen per stage, and compare the exploration strategies (none / sampling /
//! analytical) in both plan quality and model look-ups.
//!
//! Run with: `cargo run --release --example resource_planning`

use cleo::core::{pipeline, LearnedCostModel, TrainerConfig};
use cleo::engine::exec::{Simulator, SimulatorConfig};
use cleo::engine::stage::build_stage_graph;
use cleo::engine::workload::generator::{generate_cluster_workload, ClusterConfig};
use cleo::engine::{ClusterId, DayIndex, PhysicalOpKind};
use cleo::optimizer::{HeuristicCostModel, Optimizer, OptimizerConfig, PartitionExploration};

fn main() {
    // Telemetry + learned models from a small synthetic cluster.
    let workload = generate_cluster_workload(&ClusterConfig::small(ClusterId(0)), 2);
    let simulator = Simulator::new(SimulatorConfig::default());
    let default_model = HeuristicCostModel::default_model();
    let jobs: Vec<_> = workload.jobs.iter().collect();
    let telemetry = pipeline::run_jobs(
        &jobs,
        &default_model,
        OptimizerConfig::default(),
        &simulator,
    )
    .expect("telemetry");
    let predictor = pipeline::train_predictor(&telemetry, TrainerConfig::default()).expect("train");
    let learned = LearnedCostModel::new(predictor);

    // Pick one job from the last day and optimize it under different strategies.
    let job = workload
        .jobs
        .iter()
        .filter(|j| j.meta.day == DayIndex(1))
        .max_by_key(|j| j.plan.node_count())
        .expect("a job");
    println!(
        "job: {} ({} logical operators)\n",
        job.meta.name,
        job.plan.node_count()
    );

    let strategies: Vec<(&str, OptimizerConfig)> = vec![
        (
            "default heuristics (no exploration)",
            OptimizerConfig::default(),
        ),
        (
            "learned + geometric sampling",
            OptimizerConfig {
                resource_planning: true,
                partition_exploration: PartitionExploration::Geometric { skip: 2.0 },
                ..OptimizerConfig::default()
            },
        ),
        ("learned + analytical", OptimizerConfig::resource_aware()),
    ];

    for (name, config) in strategies {
        let optimized = Optimizer::new(&learned, config)
            .optimize(job)
            .expect("optimize");
        let run = simulator.run(&optimized.plan);
        let stages = build_stage_graph(&optimized.plan);
        let exchange_partitions: Vec<usize> = optimized
            .plan
            .operators()
            .iter()
            .filter(|o| o.kind == PhysicalOpKind::Exchange)
            .map(|o| o.partition_count)
            .collect();
        println!("strategy: {name}");
        println!(
            "  stages: {}, exchange partition counts: {:?}",
            stages.len(),
            exchange_partitions
        );
        println!(
            "  simulated latency: {:.1}s, total processing time: {:.0} container-seconds",
            run.job_latency, run.total_cpu_seconds
        );
        println!(
            "  cost-model invocations during planning: {}\n",
            optimized.stats.model_invocations
        );
    }
}
