//! Umbrella crate for the Cleo reproduction.
//!
//! Re-exports the workspace crates under one roof so examples and downstream users can
//! depend on a single `cleo` crate:
//!
//! * [`common`] — statistics, RNG, hashing, and output helpers,
//! * [`mlkit`] — the from-scratch ML toolkit,
//! * [`engine`] — the SCOPE-like query processing substrate and workload generators,
//! * [`optimizer`] — the Cascades-style query optimizer,
//! * [`core`] — the Cleo learned cost models and optimizer integration.

pub use cleo_common as common;
pub use cleo_core as core;
pub use cleo_engine as engine;
pub use cleo_mlkit as mlkit;
pub use cleo_optimizer as optimizer;
